package serve

import (
	"fmt"
	"strings"
	"sync"

	"rt3/internal/metrics"
)

// recentWindow bounds the sliding latency sample fed to the policy.
const recentWindow = 256

// LevelStats summarizes completed requests at one V/F level. Total
// latency (queue wait + execution) feeds the quantiles; the queue-wait
// and execution components are additionally tracked separately so
// batching delay and kernel time are observable on their own.
type LevelStats struct {
	Level  string
	Count  int
	MeanMS float64
	P50MS  float64
	P95MS  float64
	P99MS  float64
	// MeanQueueMS is mean admission-to-dispatch wait (the dynamic
	// batcher's cost); MeanExecMS is mean packed-forward execution time.
	// MeanMS = MeanQueueMS + MeanExecMS.
	MeanQueueMS float64
	MeanExecMS  float64
}

// Recorder accumulates serving observations: per-level request latencies
// (queue wait and execution recorded separately), batch sizes and fill
// ratios, queue drops, generated tokens, and reconfiguration events.
// Alongside the cumulative digests it maintains sliding windows over the
// most recent samples — the live telemetry the level policies and the
// closed-loop autotuner decide on. All methods are safe for concurrent
// use.
type Recorder struct {
	mu         sync.Mutex
	levelNames []string
	perLevel   [][]float64 // total (queue + execution) latency ms
	queueSum   []float64   // per-level queue-wait sums
	execSum    []float64   // per-level execution sums

	// sliding telemetry windows across levels (recentWindow samples)
	recent      *metrics.Window // total latency ms
	recentQueue *metrics.Window // queue-wait component ms
	recentExec  *metrics.Window // execution component ms
	recentN     *metrics.Window // dispatched batch sizes
	recentCap   *metrics.Window // dispatched batch capacities (MaxBatch)

	batches       int
	batchRequests int
	batchCapacity int // sum of MaxBatch across dispatched batches
	drops         int
	completed     int64 // requests (or generations) finished
	tokens        int64 // generated tokens (generation mode)

	switches      int
	switchModelMS float64 // modeled reconfiguration cost
	switchWallMS  float64 // measured kernel-install wall time
}

// NewRecorder sizes a recorder for the given level names.
func NewRecorder(levelNames []string) *Recorder {
	return &Recorder{
		levelNames:  levelNames,
		perLevel:    make([][]float64, len(levelNames)),
		queueSum:    make([]float64, len(levelNames)),
		execSum:     make([]float64, len(levelNames)),
		recent:      metrics.NewWindow(recentWindow),
		recentQueue: metrics.NewWindow(recentWindow),
		recentExec:  metrics.NewWindow(recentWindow),
		recentN:     metrics.NewWindow(recentWindow),
		recentCap:   metrics.NewWindow(recentWindow),
	}
}

// Observe records one completed request at the given level: queueMS is
// the admission-to-dispatch wait, execMS the packed-forward execution
// time it rode in. Their sum enters the latency quantiles.
func (r *Recorder) Observe(level int, queueMS, execMS float64) {
	totalMS := queueMS + execMS
	r.mu.Lock()
	defer r.mu.Unlock()
	r.perLevel[level] = append(r.perLevel[level], totalMS)
	r.queueSum[level] += queueMS
	r.execSum[level] += execMS
	r.completed++
	r.recent.Push(totalMS)
	r.recentQueue.Push(queueMS)
	r.recentExec.Push(execMS)
}

// ObserveBatch records one dispatched batch of n requests against the
// configured maximum batch size (the fill denominator).
func (r *Recorder) ObserveBatch(n, maxBatch int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batches++
	r.batchRequests += n
	r.batchCapacity += maxBatch
	r.recentN.Push(float64(n))
	r.recentCap.Push(float64(maxBatch))
}

// ObserveTokens records n generated tokens (generation mode; the decode
// worker calls it once per completed sequence).
func (r *Recorder) ObserveTokens(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tokens += int64(n)
}

// Counters returns the cumulative completed-request and generated-token
// counts. The autotuner differences successive reads to derive
// throughput rates per control tick.
func (r *Recorder) Counters() (completed, tokens int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.completed, r.tokens
}

// ObserveDrop records one request rejected at admission.
func (r *Recorder) ObserveDrop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drops++
}

// ObserveSwitch records one live reconfiguration: the modeled pattern-set
// swap cost and the measured kernel-install time, both milliseconds.
func (r *Recorder) ObserveSwitch(modelMS, wallMS float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.switches++
	r.switchModelMS += modelMS
	r.switchWallMS += wallMS
}

// RecentP95 returns the p95 latency of the sliding window (0 when empty).
func (r *Recorder) RecentP95() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recent.Quantile(0.95)
}

// WindowStats digests the sliding telemetry window: latency quantiles of
// the most recent completions, split into queue-wait and execution
// components, plus the recent batch fill ratio. An empty window (no
// completions yet, or none since the recorder was built) is all zeros
// with Samples == 0 — consumers must treat that as "no signal", not as
// zero latency.
type WindowStats struct {
	Samples int // completions currently in the window

	// Total admission-to-completion latency quantiles, ms.
	P50MS, P95MS, P99MS float64
	// Queue-wait component quantiles, ms.
	QueueP50MS, QueueP99MS float64
	// Execution component quantiles, ms.
	ExecP50MS, ExecP99MS float64

	// FillRatio is recent dispatched requests over recent dispatched
	// batch capacity, in [0, 1]; 0 when no batch is in the window.
	FillRatio float64
}

// RecentStats snapshots the sliding telemetry window — the live signal
// set the closed-loop autotuner converts into its RL state each control
// tick.
func (r *Recorder) RecentStats() WindowStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := WindowStats{Samples: r.recent.Len()}
	if st.Samples > 0 {
		st.P50MS = r.recent.Quantile(0.50)
		st.P95MS = r.recent.Quantile(0.95)
		st.P99MS = r.recent.Quantile(0.99)
		st.QueueP50MS = r.recentQueue.Quantile(0.50)
		st.QueueP99MS = r.recentQueue.Quantile(0.99)
		st.ExecP50MS = r.recentExec.Quantile(0.50)
		st.ExecP99MS = r.recentExec.Quantile(0.99)
	}
	if c := r.recentCap.Sum(); c > 0 {
		st.FillRatio = r.recentN.Sum() / c
	}
	return st
}

// Drops returns the rejected-request count.
func (r *Recorder) Drops() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drops
}

// Switches returns the switch count and cumulative (modeled, wall) ms.
func (r *Recorder) Switches() (int, float64, float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.switches, r.switchModelMS, r.switchWallMS
}

// MeanBatch returns the mean dispatched batch size (0 when none).
func (r *Recorder) MeanBatch() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.batches == 0 {
		return 0
	}
	return float64(r.batchRequests) / float64(r.batches)
}

// FillRatio returns dispatched requests over dispatched batch capacity
// (mean batch size / MaxBatch), in [0, 1]; 0 when nothing dispatched.
// Low fill means deadline flushes dominate: the packed forwards run
// shorter than the configured fusion width, so padding/fragmentation
// waste — capacity the batcher reserved but never filled — is visible
// directly instead of hiding inside the latency numbers.
func (r *Recorder) FillRatio() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.batchCapacity == 0 {
		return 0
	}
	return float64(r.batchRequests) / float64(r.batchCapacity)
}

// Snapshot returns per-level latency digests for levels that served at
// least one request, bundle order.
func (r *Recorder) Snapshot() []LevelStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []LevelStats
	for i, lat := range r.perLevel {
		if len(lat) == 0 {
			continue
		}
		var sum float64
		for _, v := range lat {
			sum += v
		}
		out = append(out, LevelStats{
			Level:       r.levelNames[i],
			Count:       len(lat),
			MeanMS:      sum / float64(len(lat)),
			P50MS:       metrics.Quantile(lat, 0.50),
			P95MS:       metrics.Quantile(lat, 0.95),
			P99MS:       metrics.Quantile(lat, 0.99),
			MeanQueueMS: r.queueSum[i] / float64(len(lat)),
			MeanExecMS:  r.execSum[i] / float64(len(lat)),
		})
	}
	return out
}

// Overall returns the cumulative all-levels latency digest (Level is
// "all"; the zero value when nothing has completed). Unlike Snapshot it
// pools every request regardless of the level it ran at, so run-level
// comparisons (e.g. the autotune benchmark's arms) read one number.
func (r *Recorder) Overall() LevelStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var all []float64
	var queueSum, execSum float64
	for i, lat := range r.perLevel {
		all = append(all, lat...)
		queueSum += r.queueSum[i]
		execSum += r.execSum[i]
	}
	if len(all) == 0 {
		return LevelStats{}
	}
	var sum float64
	for _, v := range all {
		sum += v
	}
	n := float64(len(all))
	return LevelStats{
		Level:       "all",
		Count:       len(all),
		MeanMS:      sum / n,
		P50MS:       metrics.Quantile(all, 0.50),
		P95MS:       metrics.Quantile(all, 0.95),
		P99MS:       metrics.Quantile(all, 0.99),
		MeanQueueMS: queueSum / n,
		MeanExecMS:  execSum / n,
	}
}

// FormatLevelStats renders the per-level digest as an aligned table.
func FormatLevelStats(stats []LevelStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %10s %10s %10s %10s %10s %10s\n",
		"level", "requests", "mean_ms", "queue_ms", "exec_ms", "p50_ms", "p95_ms", "p99_ms")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-6s %8d %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
			s.Level, s.Count, s.MeanMS, s.MeanQueueMS, s.MeanExecMS, s.P50MS, s.P95MS, s.P99MS)
	}
	return b.String()
}
