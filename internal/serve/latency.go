package serve

import (
	"fmt"
	"strings"
	"sync"

	"rt3/internal/metrics"
)

// recentWindow bounds the sliding latency sample fed to the policy.
const recentWindow = 256

// LevelStats summarizes completed requests at one V/F level.
type LevelStats struct {
	Level  string
	Count  int
	MeanMS float64
	P50MS  float64
	P95MS  float64
	P99MS  float64
}

// Recorder accumulates serving observations: per-level request latencies,
// batch sizes, queue drops, and reconfiguration events. All methods are
// safe for concurrent use.
type Recorder struct {
	mu         sync.Mutex
	levelNames []string
	perLevel   [][]float64 // total (queue + service) latency ms
	recent     []float64   // sliding window across levels
	recentPos  int

	batches       int
	batchRequests int
	drops         int

	switches      int
	switchModelMS float64 // modeled reconfiguration cost
	switchWallMS  float64 // measured kernel-install wall time
}

// NewRecorder sizes a recorder for the given level names.
func NewRecorder(levelNames []string) *Recorder {
	return &Recorder{
		levelNames: levelNames,
		perLevel:   make([][]float64, len(levelNames)),
	}
}

// Observe records one completed request at the given level.
func (r *Recorder) Observe(level int, totalMS float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.perLevel[level] = append(r.perLevel[level], totalMS)
	if len(r.recent) < recentWindow {
		r.recent = append(r.recent, totalMS)
	} else {
		r.recent[r.recentPos] = totalMS
		r.recentPos = (r.recentPos + 1) % recentWindow
	}
}

// ObserveBatch records one dispatched batch of n requests.
func (r *Recorder) ObserveBatch(n int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batches++
	r.batchRequests += n
}

// ObserveDrop records one request rejected at admission.
func (r *Recorder) ObserveDrop() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.drops++
}

// ObserveSwitch records one live reconfiguration: the modeled pattern-set
// swap cost and the measured kernel-install time, both milliseconds.
func (r *Recorder) ObserveSwitch(modelMS, wallMS float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.switches++
	r.switchModelMS += modelMS
	r.switchWallMS += wallMS
}

// RecentP95 returns the p95 latency of the sliding window (0 when empty).
func (r *Recorder) RecentP95() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return metrics.Quantile(r.recent, 0.95)
}

// Drops returns the rejected-request count.
func (r *Recorder) Drops() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drops
}

// Switches returns the switch count and cumulative (modeled, wall) ms.
func (r *Recorder) Switches() (int, float64, float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.switches, r.switchModelMS, r.switchWallMS
}

// MeanBatch returns the mean dispatched batch size (0 when none).
func (r *Recorder) MeanBatch() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.batches == 0 {
		return 0
	}
	return float64(r.batchRequests) / float64(r.batches)
}

// Snapshot returns per-level latency digests for levels that served at
// least one request, bundle order.
func (r *Recorder) Snapshot() []LevelStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []LevelStats
	for i, lat := range r.perLevel {
		if len(lat) == 0 {
			continue
		}
		var sum float64
		for _, v := range lat {
			sum += v
		}
		out = append(out, LevelStats{
			Level:  r.levelNames[i],
			Count:  len(lat),
			MeanMS: sum / float64(len(lat)),
			P50MS:  metrics.Quantile(lat, 0.50),
			P95MS:  metrics.Quantile(lat, 0.95),
			P99MS:  metrics.Quantile(lat, 0.99),
		})
	}
	return out
}

// FormatLevelStats renders the per-level digest as an aligned table.
func FormatLevelStats(stats []LevelStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %10s %10s %10s %10s\n", "level", "requests", "mean_ms", "p50_ms", "p95_ms", "p99_ms")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-6s %8d %10.3f %10.3f %10.3f %10.3f\n",
			s.Level, s.Count, s.MeanMS, s.P50MS, s.P95MS, s.P99MS)
	}
	return b.String()
}
