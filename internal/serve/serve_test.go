package serve_test

import (
	"math/rand"
	"testing"
	"time"

	"rt3/internal/deploy"
	"rt3/internal/dvfs"
	"rt3/internal/mat"
	"rt3/internal/pattern"
	"rt3/internal/rtswitch"
	"rt3/internal/serve"
	"rt3/internal/transformer"
)

// levelNames / sparsities define the three-section test deployment
// ({l6, l4, l3}, the paper's evaluation levels, fastest first).
var (
	levelNames = []string{"l6", "l4", "l3"}
	sparsities = []float64{0.3, 0.5, 0.7}
)

// newTestDeployment builds a tiny classifier, serializes its bundle
// through bytes (exercising the wire format), reloads it, and deploys it
// onto the requested number of cloned replicas.
func newTestDeployment(t testing.TB, replicas int) (*serve.Engine, *deploy.Bundle) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	model := transformer.NewClassifier(transformer.Config{
		Vocab: 24, Dim: 8, Heads: 2, FFHidden: 16, EncLayers: 2, SeqLen: 10, Classes: 3,
	}, rng)
	ref := model.PrunableLinears()[0].W.Value
	var sets []*pattern.Set
	for _, sp := range sparsities {
		sets = append(sets, pattern.GenerateSet(ref, 4, sp, 3, rng))
	}
	data, err := serve.BundleFromModel(model, sets, levelNames).Encode()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := deploy.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	var ms []serve.Model
	for i := 0; i < replicas; i++ {
		ms = append(ms, model.Clone())
	}
	eng, err := serve.NewEngine(loaded, ms, rtswitch.DefaultSwitchCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return eng, loaded
}

func randSeqs(n, seqLen, vocab int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int, n)
	for i := range out {
		seq := make([]int, seqLen)
		for j := range seq {
			seq[j] = rng.Intn(vocab)
		}
		out[i] = seq
	}
	return out
}

// TestEnginePackedMatchesDense verifies the core serving invariant: at
// every level, the packed-kernel forward pass equals masked dense
// execution element-for-element, and switching charges exactly the cost
// model's pattern-swap time for the section's serialized size.
func TestEnginePackedMatchesDense(t *testing.T) {
	eng, bundle := newTestDeployment(t, 1)
	costs := rtswitch.DefaultSwitchCostModel()
	seqs := randSeqs(4, 10, 24, 5)
	for lvl := 0; lvl < eng.NumLevels(); lvl++ {
		cost, err := eng.SwitchTo(lvl)
		if err != nil {
			t.Fatal(err)
		}
		if lvl > 0 {
			maskBytes, err := bundle.SetBytes(lvl)
			if err != nil {
				t.Fatal(err)
			}
			want := costs.PatternSwitchMS(maskBytes)
			if cost != want {
				t.Fatalf("level %d switch cost %g, want %g", lvl, cost, want)
			}
		}
		for _, ids := range seqs {
			got := eng.Forward(0, ids)
			ref, err := eng.DenseForward(lvl, ids)
			if err != nil {
				t.Fatal(err)
			}
			if !mat.Equal(got, ref, 1e-9) {
				t.Fatalf("level %s: packed forward differs from masked dense execution", eng.LevelName(lvl))
			}
		}
	}
	// sections must differ: a sparser level keeps fewer weights
	outs := make([]*mat.Matrix, eng.NumLevels())
	for lvl := range outs {
		var err error
		outs[lvl], err = eng.DenseForward(lvl, seqs[0])
		if err != nil {
			t.Fatal(err)
		}
	}
	if mat.Equal(outs[0], outs[2], 1e-12) {
		t.Fatal("fastest and slowest levels produced identical outputs; pattern sets not applied")
	}
}

// TestServerHotSwapMidTraffic is the end-to-end reconfiguration test:
// a serialized bundle is loaded into a running batched server, the level
// is switched repeatedly mid-traffic, and every response must be
// element-identical to dense execution at the level it was served on,
// with nothing dropped.
func TestServerHotSwapMidTraffic(t *testing.T) {
	eng, _ := newTestDeployment(t, 2)
	s := serve.New(eng, serve.Config{
		MaxBatch: 4,
		MaxDelay: 500 * time.Microsecond,
		QueueCap: 1024,
	})
	s.Start()

	pool := randSeqs(8, 10, 24, 7)
	const n = 200
	type tagged struct {
		poolIdx int
		ch      <-chan serve.Response
	}
	var inflight []tagged
	schedule := []int{1, 2, 0} // switch targets, applied mid-stream
	for i := 0; i < n; i++ {
		if i > 0 && i%50 == 0 {
			target := schedule[(i/50)-1]
			if _, err := s.SwitchTo(target); err != nil {
				t.Fatal(err)
			}
		}
		idx := i % len(pool)
		ch, err := s.Submit(pool[idx])
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		inflight = append(inflight, tagged{poolIdx: idx, ch: ch})
		time.Sleep(100 * time.Microsecond)
	}
	responses := make([]serve.Response, n)
	for i, p := range inflight {
		responses[i] = <-p.ch
	}
	s.Stop()

	switches, modelMS, _ := s.Recorder().Switches()
	if switches != len(schedule) {
		t.Fatalf("switches %d, want %d", switches, len(schedule))
	}
	if modelMS <= 0 {
		t.Fatal("switch cost not charged")
	}
	if d := s.Recorder().Drops(); d != 0 {
		t.Fatalf("%d requests dropped", d)
	}
	// verify every response against dense execution at its level
	refs := map[[2]int]*mat.Matrix{}
	levelsSeen := map[int]bool{}
	for i, p := range inflight {
		resp := responses[i]
		levelsSeen[resp.Level] = true
		key := [2]int{resp.Level, p.poolIdx}
		ref, ok := refs[key]
		if !ok {
			var err error
			ref, err = s.DenseReference(resp.Level, pool[p.poolIdx])
			if err != nil {
				t.Fatal(err)
			}
			refs[key] = ref
		}
		if !mat.Equal(resp.Out, ref, 1e-9) {
			t.Fatalf("response %d (level %d) differs from dense execution", i, resp.Level)
		}
	}
	if len(levelsSeen) < 2 {
		t.Fatalf("traffic only saw levels %v; switches did not take effect mid-stream", levelsSeen)
	}
}

// TestDynamicBatching checks both flush paths: a full batch flushes on
// size well before the deadline; a lone request flushes at the deadline.
func TestDynamicBatching(t *testing.T) {
	// the deadline is deliberately huge relative to service time so the
	// batch-size assertions, not wall-clock luck, decide the outcome
	const deadline = 150 * time.Millisecond
	eng, _ := newTestDeployment(t, 1)
	s := serve.New(eng, serve.Config{MaxBatch: 4, MaxDelay: deadline})
	s.Start()
	defer s.Stop()

	seq := randSeqs(1, 10, 24, 9)[0]
	var chans []<-chan serve.Response
	for i := 0; i < 4; i++ {
		ch, err := s.Submit(seq)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		resp := <-ch
		if resp.BatchSize != 4 {
			t.Fatalf("response %d rode batch of %d, want 4", i, resp.BatchSize)
		}
		if resp.TotalMS > 100 {
			t.Fatalf("full batch waited for the deadline (%.1f ms)", resp.TotalMS)
		}
	}

	ch, err := s.Submit(seq)
	if err != nil {
		t.Fatal(err)
	}
	resp := <-ch
	if resp.BatchSize != 1 {
		t.Fatalf("lone request rode batch of %d", resp.BatchSize)
	}
	if resp.TotalMS < 100 {
		t.Fatalf("lone request flushed after %.1f ms, want ~%v (deadline flush)", resp.TotalMS, deadline)
	}
}

// TestSubmitAdmission checks the bounded-queue and lifecycle errors.
func TestSubmitAdmission(t *testing.T) {
	eng, _ := newTestDeployment(t, 1)
	s := serve.New(eng, serve.Config{QueueCap: 2})
	seq := randSeqs(1, 10, 24, 11)[0]
	// not started: the queue fills and the third request is rejected
	var queued []<-chan serve.Response
	for i := 0; i < 2; i++ {
		ch, err := s.Submit(seq)
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, ch)
	}
	if _, err := s.Submit(seq); err != serve.ErrQueueFull {
		t.Fatalf("err %v, want ErrQueueFull", err)
	}
	if d := s.Recorder().Drops(); d != 1 {
		t.Fatalf("drops %d, want 1", d)
	}
	s.Stop()
	// never-started server: queued requests are answered with ErrStopped
	for i, ch := range queued {
		if resp := <-ch; resp.Err != serve.ErrStopped {
			t.Fatalf("queued request %d got %+v, want ErrStopped", i, resp)
		}
	}
	if _, err := s.Submit(seq); err != serve.ErrStopped {
		t.Fatalf("err %v, want ErrStopped", err)
	}
}

// TestGovernorPolicyDecisions unit-tests the battery-driven policy with
// queue-pressure escalation.
func TestGovernorPolicyDecisions(t *testing.T) {
	levels := []dvfs.Level{dvfs.OdroidXU3Levels[5], dvfs.OdroidXU3Levels[3], dvfs.OdroidXU3Levels[2]}
	p := serve.NewGovernorPolicy(levels, 10)
	if got := p.Decide(serve.Status{BatteryFraction: 0.9}); got != 0 {
		t.Fatalf("full battery picked level %d", got)
	}
	if got := p.Decide(serve.Status{BatteryFraction: 0.5}); got != 1 {
		t.Fatalf("half battery picked level %d", got)
	}
	if got := p.Decide(serve.Status{BatteryFraction: 0.1}); got != 2 {
		t.Fatalf("low battery picked level %d", got)
	}
	// queue pressure buys one level back
	if got := p.Decide(serve.Status{BatteryFraction: 0.1, QueueDepth: 12}); got != 1 {
		t.Fatalf("pressured low battery picked level %d", got)
	}
	if got := p.Decide(serve.Status{BatteryFraction: 0.9, QueueDepth: 12}); got != 0 {
		t.Fatalf("pressured full battery picked level %d", got)
	}
}

// TestRLPolicyLearnsEnergySaving drives the REINFORCE policy with a
// drained battery and a met latency target: the energy bonus must teach
// it to prefer the low-power level.
func TestRLPolicyLearnsEnergySaving(t *testing.T) {
	levels := []dvfs.Level{dvfs.OdroidXU3Levels[5], dvfs.OdroidXU3Levels[3], dvfs.OdroidXU3Levels[2]}
	p, err := serve.NewRLPolicy(levels, dvfs.DefaultPowerModel(), 13)
	if err != nil {
		t.Fatal(err)
	}
	st := serve.Status{BatteryFraction: 0.1, RecentP95MS: 1, TargetMS: 10, NumLevels: 3}
	counts := make([]int, 3)
	const steps = 500
	for i := 0; i < steps; i++ {
		lvl := p.Decide(st)
		if lvl < 0 || lvl > 2 {
			t.Fatalf("level %d out of range", lvl)
		}
		if i >= steps/2 {
			counts[lvl]++
		}
	}
	if counts[2] <= counts[0] {
		t.Fatalf("policy did not learn energy saving: counts %v", counts)
	}
}

// TestRunLoadWithGovernor replays an open-loop ramp against a server
// whose simulated battery drains under load: the governor must perform
// live switches and every response must verify against dense execution.
func TestRunLoadWithGovernor(t *testing.T) {
	eng, _ := newTestDeployment(t, 2)
	s := serve.New(eng, serve.Config{
		MaxBatch:    4,
		MaxDelay:    time.Millisecond,
		QueueCap:    4096,
		Policy:      serve.NewGovernorPolicy(eng.Levels(), 0),
		PolicyEvery: 5 * time.Millisecond,
		BatteryJ:    0.05,
	})
	s.Start()
	defer s.Stop()

	report, err := serve.RunLoad(s, serve.LoadSpec{
		Duration: 300 * time.Millisecond,
		StartRPS: 300,
		EndRPS:   800,
		SeqLen:   10,
		Vocab:    24,
		Seed:     17,
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Dropped != 0 {
		t.Fatalf("%d dropped", report.Dropped)
	}
	if report.Completed != report.Offered {
		t.Fatalf("completed %d != offered %d", report.Completed, report.Offered)
	}
	if report.Switches < 1 {
		t.Fatal("no live switch under battery drain")
	}
	if report.Mismatches != 0 {
		t.Fatalf("%d of %d verified responses mismatched dense execution", report.Mismatches, report.Verified)
	}
	if len(report.Levels) < 2 {
		t.Fatalf("only %d levels served traffic", len(report.Levels))
	}
	if report.BatteryFraction >= 1 {
		t.Fatal("battery did not drain")
	}
	_ = report.String()
}
