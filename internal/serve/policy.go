package serve

import (
	"fmt"
	"math/rand"

	"rt3/internal/dvfs"
	"rt3/internal/rl"
)

// Policy decides which V/F level the server should run at next. Decide
// is called from the server's policy loop, never concurrently.
type Policy interface {
	Decide(s Status) int
}

// GovernorPolicy drives the level from the simulated battery through the
// dvfs energy-threshold governor — the paper's "dancing along battery"
// behaviour — with one escalation: when the queue backs up past
// HighWater, it requests one level faster than the governor would,
// trading energy for latency under pressure.
type GovernorPolicy struct {
	Gov *dvfs.Governor
	// HighWater is the queue depth that triggers escalation (0 disables).
	HighWater int
}

// NewGovernorPolicy builds the default battery-driven policy over the
// deployed levels (fastest first).
func NewGovernorPolicy(levels []dvfs.Level, highWater int) *GovernorPolicy {
	return &GovernorPolicy{Gov: dvfs.NewGovernor(levels), HighWater: highWater}
}

// Decide implements Policy.
func (p *GovernorPolicy) Decide(s Status) int {
	idx := p.Gov.PickIndex(s.BatteryFraction)
	if p.HighWater > 0 && s.QueueDepth >= p.HighWater && idx > 0 {
		idx--
	}
	return idx
}

// RLPolicy learns the level online with the paper's REINFORCE machinery:
// the rl.Controller's set head picks one of the deployed levels each
// tick, and the realized Status one tick later is folded back as reward —
// positive when the latency objective holds, plus an energy bonus for
// running cheap levels that grows as the battery drains.
type RLPolicy struct {
	// EnergyWeight scales the low-power bonus (default 0.8).
	EnergyWeight float64

	ctrl      *rl.Controller
	base      *rl.Baseline
	rng       *rand.Rand
	relPower  []float64 // per level, relative to the fastest
	numLevels int
	lastEp    *rl.Episode
	lastLevel int
}

// NewRLPolicy builds an online level policy over the deployed levels
// (fastest first) using the given power model for the energy bonus.
func NewRLPolicy(levels []dvfs.Level, power dvfs.PowerModel, seed int64) (*RLPolicy, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("serve: RLPolicy needs at least one level")
	}
	rng := rand.New(rand.NewSource(seed))
	ctrl, err := rl.NewController(rl.Config{
		Hidden: 8, NumSets: len(levels), NumPatterns: 1, Levels: 1, K: 1, LR: 0.1,
	}, rng)
	if err != nil {
		return nil, err
	}
	p := &RLPolicy{
		EnergyWeight: 0.8,
		ctrl:         ctrl,
		base:         rl.NewBaseline(0.7),
		rng:          rng,
		numLevels:    len(levels),
	}
	p0 := power.Power(levels[0])
	for _, l := range levels {
		p.relPower = append(p.relPower, power.Power(l)/p0)
	}
	return p, nil
}

// Decide implements Policy: it first reinforces the previous decision
// with the reward implied by the observed Status, then samples the next
// level from the set head.
func (p *RLPolicy) Decide(s Status) int {
	if p.lastEp != nil {
		adv := p.base.Update(p.reward(s))
		p.ctrl.Reinforce(p.lastEp, adv)
	}
	ep := p.ctrl.SampleSet(p.rng)
	p.lastEp = ep
	p.lastLevel = ep.SetChoices[0] % p.numLevels
	return p.lastLevel
}

// reward scores the previous decision from the Status it produced.
func (p *RLPolicy) reward(s Status) float64 {
	r := 1.0
	if s.TargetMS > 0 && s.RecentP95MS > s.TargetMS {
		r = -1
	}
	// running below peak power earns a bonus that matters more as the
	// battery drains (0.2 keeps a mild preference even on full charge)
	r += p.EnergyWeight * (1 - p.relPower[p.lastLevel]) * (1 - s.BatteryFraction + 0.2)
	return r
}
