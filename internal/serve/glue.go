package serve

import (
	"fmt"
	"strings"

	"rt3/internal/data"
	"rt3/internal/mat"
	"rt3/internal/metrics"
)

// TaskReport summarizes one GLUE-style evaluation split served through
// the batching stack.
type TaskReport struct {
	Name   string  // task name (e.g. "SST-2")
	Metric string  // scoring metric (accuracy / F1 / MCC / Spearman)
	Score  float64 // metric over the split, computed from served outputs
	// Examples is the number of eval examples scored (= responses).
	Examples int
	// Levels counts responses per pattern-set level index.
	Levels map[int]int

	Verified   int
	Mismatches int
}

// String renders the report in the repo's table style.
func (r *TaskReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %s %.4f over %d examples", r.Name, r.Metric, r.Score, r.Examples)
	if r.Verified > 0 {
		fmt.Fprintf(&b, "  (verified %d, %d mismatches)", r.Verified, r.Mismatches)
	}
	return b.String()
}

// RunTask serves a GLUE-style task's eval split through a started
// server's batching path — every example is submitted as classification
// traffic and scored with the task's own metric (argmax label for
// classification kinds, the raw regression head for STS-B). On a
// Generate-mode server the examples interleave with decode steps, which
// is exactly the mixed workload the chaos harness replays. With verify,
// every served output is recomputed against masked dense execution at
// the level it was served on.
func RunTask(s *Server, task *data.Task, verify bool) (*TaskReport, error) {
	if task == nil || len(task.Eval) == 0 {
		return nil, fmt.Errorf("serve: RunTask needs a task with a non-empty eval split")
	}
	chans := make([]<-chan Response, len(task.Eval))
	for i, ex := range task.Eval {
		ch, err := s.Submit(ex.Tokens)
		if err != nil {
			return nil, fmt.Errorf("serve: submit eval example %d: %w", i, err)
		}
		chans[i] = ch
	}
	report := &TaskReport{
		Name:     task.Spec.Name,
		Metric:   task.Spec.Kind.String(),
		Examples: len(task.Eval),
		Levels:   map[int]int{},
	}
	responses := make([]Response, len(chans))
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			return nil, fmt.Errorf("serve: eval example %d: %w", i, resp.Err)
		}
		responses[i] = resp
		report.Levels[resp.Level]++
	}

	if task.Spec.Classes == 1 {
		pred := make([]float64, len(responses))
		gold := make([]float64, len(responses))
		for i, resp := range responses {
			pred[i] = resp.Out.At(0, 0)
			gold[i] = task.Eval[i].Score
		}
		report.Score = metrics.SpearmanRho(pred, gold)
	} else {
		pred := make([]int, len(responses))
		gold := make([]int, len(responses))
		for i, resp := range responses {
			pred[i] = resp.Out.ArgmaxRow(0)
			gold[i] = task.Eval[i].Label
		}
		switch task.Spec.Kind {
		case data.KindF1:
			report.Score = metrics.F1(pred, gold)
		case data.KindMCC:
			report.Score = metrics.MCC(pred, gold)
		default:
			report.Score = metrics.Accuracy(pred, gold)
		}
	}

	if verify {
		// recompute each (level, example) once via dense execution
		refs := map[[2]int]*mat.Matrix{}
		for i, resp := range responses {
			key := [2]int{resp.Level, i}
			ref, ok := refs[key]
			if !ok {
				var err error
				ref, err = s.DenseReference(resp.Level, task.Eval[i].Tokens)
				if err != nil {
					return nil, err
				}
				refs[key] = ref
			}
			report.Verified++
			if !mat.Equal(resp.Out, ref, 1e-9) {
				report.Mismatches++
			}
		}
	}
	return report, nil
}
