package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"rt3/internal/dvfs"
	"rt3/internal/kernel"
	"rt3/internal/mat"
	"rt3/internal/obs"
	"rt3/internal/spec"
)

// Admission and lifecycle errors.
var (
	ErrQueueFull     = errors.New("serve: request queue full")
	ErrStopped       = errors.New("serve: server stopped")
	ErrCrashed       = errors.New("serve: server crashed")
	ErrEmptyRequest  = errors.New("serve: empty token sequence")
	ErrNotGenerating = errors.New("serve: SubmitGen requires Config.Generate")
	ErrNoSpec        = errors.New("serve: GenOpts.Speculate requires Config.Spec")
	ErrBadSplit      = errors.New("serve: GenOpts.SplitAt must cut the prompt into non-empty prefix and suffix")
)

// Config tunes the server. Zero values pick the documented defaults.
type Config struct {
	// MaxBatch flushes the pending batch when this many requests are
	// waiting (default 8).
	MaxBatch int
	// MaxDelay flushes a non-empty batch after this long even if short
	// (default 2ms) — the latency/throughput knob of dynamic batching.
	MaxDelay time.Duration
	// QueueCap bounds admitted-but-unserved requests (default 1024);
	// Submit fails fast with ErrQueueFull beyond it.
	QueueCap int

	// Generate switches the worker pool from batched classification to
	// continuous-batching incremental decoding: each worker runs a
	// KV-cached step loop on its replica, admitting queued generation
	// requests into up to MaxBatch decode slots every step (prefill as
	// one fused packed pass, then one token per fused step) and evicting
	// on EOS or token budget. Requires replicas implementing DecodeModel
	// (e.g. transformer.LMModel). Submit still works — the step loop
	// serves mixed traffic, executing queued classification batches as
	// fused forward passes between decode steps — so one queue carries
	// classify+generate workloads.
	Generate bool
	// MaxGenTokens caps generated tokens per request when the request
	// does not set its own budget (default 32).
	MaxGenTokens int

	// Spec enables self-speculative decoding for generation requests
	// (requires Generate): the decode loop drafts SpecConfig.K tokens per
	// round at a cheap high-sparsity level and verifies them in one fused
	// target-level chunk — bit-identical output, fewer target passes.
	// Requests opt in per request (GenOpts.Speculate) unless
	// SpecConfig.Auto applies it to all of them.
	Spec *SpecConfig
	// PrefixCacheRows enables the cross-request radix prefix KV cache for
	// split generation requests (GenOpts.SplitAt): > 0 bounds the cached
	// K/V rows (LRU eviction), < 0 is unbounded, 0 disables the cache
	// (split requests still compute prefix+suffix, just without sharing).
	PrefixCacheRows int

	// Policy, when set, is consulted every PolicyEvery (default 20ms)
	// with the current Status; a differing decision triggers a live
	// level switch.
	Policy      Policy
	PolicyEvery time.Duration
	// TargetMS is the latency objective surfaced to the policy.
	TargetMS float64

	// Autotune, when set, runs the closed-loop RL/DVFS controller
	// instead of the Policy loop: every control tick it samples the
	// sliding telemetry window, quantizes it into the rl state space,
	// queries the controller policy epsilon-greedily, learns online from
	// the observed reward, and drives hot pattern-set/V/F switches
	// through the drain path — recording an auditable decision trace
	// (see Autotuner). Supersedes Policy when both are set.
	Autotune *AutotuneConfig

	// Trace configures request-scoped tracing. The zero value enables
	// capture with the obs defaults (free-listed span buffers, sampled
	// decode steps, a 256-trace ring); set Trace.Disabled to opt out.
	// Traces record queue wait, batch formation, prefill, sampled decode
	// steps, and any switch/drain stall the request overlapped, and are
	// exported via Server.Tracer (JSONL or Chrome trace_event).
	Trace obs.TracerConfig

	// OnAutotuneDecision, when set, is invoked from the autotune loop
	// after every control tick with the decision as applied (Switched and
	// SwitchCostMS filled in). Callers use it to stream decision lines
	// through a logger; the callback runs on the control loop goroutine
	// and must not block.
	OnAutotuneDecision func(AutotuneDecision)

	// StepFloor, when > 0, is the modeled minimum wall time of one fused
	// execution (a batch forward, a prefill pass, or a decode step): the
	// worker idles out the remainder after running at host speed. Where
	// SimDVFS stretches execution relative to the host, StepFloor pins an
	// absolute per-step cost, making a replica's serving capacity a
	// deterministic function of configuration instead of host speed — the
	// knob the cluster scaling benchmarks rely on to show node counts,
	// not host cores, as the capacity axis.
	StepFloor time.Duration

	// SimDVFS, when true, simulates the active V/F level's frequency in
	// wall-clock execution: after every fused forward pass (and prefill
	// or decode step in generation mode) the worker idles the remaining
	// modeled time, stretching execution by f_fastest/f_level. On host
	// hardware the packed kernels run orders of magnitude faster than
	// the modeled mobile core, so without this a slower level changes
	// energy accounting but never observable latency; with it, slow
	// levels build real queue pressure under load — the latency/energy
	// trade the closed-loop autotuner navigates.
	SimDVFS bool

	// BatteryJ, when > 0, enables the simulated battery: every request
	// drains the modeled inference energy of the active level, so a
	// battery-aware policy sees charge fall under load.
	BatteryJ float64
	// Power is the V/F power model (default dvfs.DefaultPowerModel).
	Power dvfs.PowerModel
	// CyclesPerInference is the modeled per-request work used for energy
	// accounting (default 2e6 cycles).
	CyclesPerInference float64
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	if c.PolicyEvery <= 0 {
		c.PolicyEvery = 20 * time.Millisecond
	}
	if c.MaxGenTokens <= 0 {
		c.MaxGenTokens = 32
	}
	if c.Power == (dvfs.PowerModel{}) {
		c.Power = dvfs.DefaultPowerModel()
	}
	if c.CyclesPerInference <= 0 {
		c.CyclesPerInference = 2e6
	}
	return c
}

// Response is the answer to one request.
type Response struct {
	// Err is non-nil when the request was abandoned (the server was
	// stopped before ever starting); all other fields are then zero.
	Err error
	// Out is the model output (e.g. 1 x Classes logits).
	Out *mat.Matrix
	// Level is the V/F level index the request executed at.
	Level int
	// QueueMS is time from admission to batch dispatch — the dynamic
	// batcher's wait, per request. ExecMS is the packed forward pass's
	// execution time, shared by every request in the batch (the batch
	// runs as one fused forward). TotalMS = QueueMS + ExecMS, admission
	// to completion.
	QueueMS, ExecMS, TotalMS float64
	// BatchSize is the size of the batch the request rode in.
	BatchSize int
}

type request struct {
	ids  []int
	enq  time.Time
	resp chan Response
	tr   *obs.Trace // nil when tracing is disabled
}

// Status is the server state snapshot handed to the level policy.
type Status struct {
	Level           int
	NumLevels       int
	QueueDepth      int
	QueueCap        int
	BatteryFraction float64 // 1 when energy accounting is disabled
	RecentP95MS     float64
	TargetMS        float64
}

// Server is the batched, reconfiguration-aware inference frontend: a
// bounded request queue feeds a dynamic batcher (flush on size or
// deadline); a worker pool — one worker per engine replica — executes
// batches through the packed kernels; SwitchTo drains in-flight batches,
// swaps the active pattern set and V/F level on the engine, and charges
// the modeled reconfiguration cost.
type Server struct {
	cfg    Config
	eng    *Engine
	rec    *Recorder
	reg    *obs.Registry
	tracer *obs.Tracer // nil when Config.Trace.Disabled
	tuner  *Autotuner  // non-nil when Config.Autotune is set

	// prefixCache is the cross-request radix prefix KV cache, shared by
	// every decode worker (nil unless Config.PrefixCacheRows != 0).
	prefixCache *spec.Radix
	// speculation accounting across all workers (atomic; exposed as
	// rt3_spec_* when Config.Spec is set).
	specRounds, specDrafted, specAccepted, specCommitted atomic.Int64

	batMu   sync.Mutex
	battery *dvfs.Battery // guarded by batMu

	// slowdown is the transient straggler factor (>= 1) chaos injection
	// applies to every fused execution's modeled duration, stored as
	// math.Float64bits for lock-free reads on the step path (0 ≡ 1,
	// unset).
	slowdown atomic.Uint64

	in      chan *request
	genIn   chan *genReq
	batches chan []*request

	// execMu is read-held by workers for the duration of one batch and
	// write-held across a switch: taking the write lock IS the drain.
	execMu sync.RWMutex

	stateMu sync.RWMutex
	started bool
	stopped bool

	done chan struct{}
	// kill is closed by Kill (simulated crash): workers abort in-flight
	// work with ErrCrashed instead of completing it.
	kill chan struct{}
	wg   sync.WaitGroup
}

// New builds a server over a deployed engine. A Generate configuration
// requires the engine's replicas to support incremental decoding.
func New(eng *Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	if cfg.Generate && !eng.SupportsDecode() {
		panic("serve: Config.Generate requires model replicas implementing DecodeModel (e.g. transformer.LMModel)")
	}
	if cfg.Spec != nil {
		if !cfg.Generate {
			panic("serve: Config.Spec requires Config.Generate")
		}
		sc := cfg.Spec.withDefaults(eng.NumLevels())
		if sc.DraftLevel >= eng.NumLevels() {
			panic(fmt.Sprintf("serve: Spec.DraftLevel %d out of range %d", sc.DraftLevel, eng.NumLevels()))
		}
		cfg.Spec = &sc
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:     cfg,
		eng:     eng,
		rec:     NewRecorderOn(reg, eng.bundle.LevelNames),
		reg:     reg,
		tracer:  obs.NewTracer(cfg.Trace),
		in:      make(chan *request, cfg.QueueCap),
		genIn:   make(chan *genReq, cfg.QueueCap),
		batches: make(chan []*request, eng.Replicas()),
		done:    make(chan struct{}),
		kill:    make(chan struct{}),
	}
	if cfg.BatteryJ > 0 {
		s.battery = dvfs.NewBattery(cfg.BatteryJ)
	}
	if cfg.PrefixCacheRows != 0 {
		capRows := cfg.PrefixCacheRows
		if capRows < 0 {
			capRows = 0 // spec.NewRadix: <= 0 is unbounded
		}
		s.prefixCache = spec.NewRadix(capRows)
		s.prefixCache.RegisterMetrics(reg)
	}
	if cfg.Spec != nil {
		reg.CounterFunc("rt3_spec_rounds_total",
			"Speculative draft/verify rounds.",
			func() float64 { return float64(s.specRounds.Load()) })
		reg.CounterFunc("rt3_spec_drafted_total",
			"Draft tokens proposed by the draft level.",
			func() float64 { return float64(s.specDrafted.Load()) })
		reg.CounterFunc("rt3_spec_accepted_total",
			"Draft tokens accepted by target-level verification.",
			func() float64 { return float64(s.specAccepted.Load()) })
		reg.CounterFunc("rt3_spec_committed_total",
			"Tokens committed by speculative rounds (accepted + corrections/bonuses).",
			func() float64 { return float64(s.specCommitted.Load()) })
	}
	if cfg.Autotune != nil {
		tuner, err := NewAutotuner(eng.Levels(), cfg.Power, cfg.CyclesPerInference, *cfg.Autotune)
		if err != nil {
			panic("serve: " + err.Error())
		}
		s.tuner = tuner
		ac := tuner.cfg // defaults resolved once, the loop reads them
		s.cfg.Autotune = &ac
		tuner.RegisterMetrics(reg)
	}
	eng.RegisterMetrics(reg)
	kernel.RegisterMetrics(reg)
	s.tracer.RegisterMetrics(reg)
	reg.GaugeFunc("rt3_queue_depth", "Admitted-but-unserved requests.",
		func() float64 { return float64(len(s.in) + len(s.genIn)) })
	reg.GaugeFunc("rt3_battery_fraction", "Simulated state of charge (1 when disabled).",
		s.BatteryFraction)
	return s
}

// Recorder exposes the server's observation sink.
func (s *Server) Recorder() *Recorder { return s.rec }

// Metrics exposes the server's metrics registry — every instrument the
// recorder, engine, reconfigurator, tracer and autotuner register. The
// admin endpoint serves it as /metrics.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Tracer exposes the server's request tracer (nil when tracing is
// disabled); its ring holds the most recent finished request traces.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Engine exposes the underlying execution engine.
func (s *Server) Engine() *Engine { return s.eng }

// Start launches the worker pool — the dynamic batcher plus one batch
// worker per engine replica, or (in Generate mode) one continuous-
// batching decode loop per replica — and, when configured, the
// closed-loop autotuner or the policy loop.
func (s *Server) Start() {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	if s.started || s.stopped {
		return
	}
	s.started = true
	if s.cfg.Generate {
		for i := 0; i < s.eng.Replicas(); i++ {
			s.wg.Add(1)
			go s.decodeWorker(i)
		}
	} else {
		s.wg.Add(1)
		go s.batcher()
		for i := 0; i < s.eng.Replicas(); i++ {
			s.wg.Add(1)
			go s.worker(i)
		}
	}
	switch {
	case s.tuner != nil:
		s.wg.Add(1)
		go s.autotuneLoop()
	case s.cfg.Policy != nil:
		s.wg.Add(1)
		go s.policyLoop()
	}
}

// Submit admits one request and returns the channel its response will
// arrive on (buffered; exactly one send). It fails fast with
// ErrEmptyRequest for a zero-length sequence (the packed batch forward
// has no representation for it), ErrQueueFull when the queue is at
// capacity, and ErrStopped after Stop. In Generate mode the request is
// served by the decode loops between fused decode steps (mixed
// classify+generate traffic in one queue).
func (s *Server) Submit(ids []int) (<-chan Response, error) {
	if len(ids) == 0 {
		return nil, ErrEmptyRequest
	}
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.stopped {
		return nil, ErrStopped
	}
	r := &request{ids: ids, enq: time.Now(), resp: make(chan Response, 1)}
	r.tr = s.tracer.StartAt("request", r.enq)
	select {
	case s.in <- r:
		return r.resp, nil
	default:
		s.tracer.Abort(r.tr)
		s.rec.ObserveDrop()
		return nil, ErrQueueFull
	}
}

// Stop closes admission, drains every queued request through the
// workers — in Generate mode queued and in-flight generations run to
// completion — and blocks until all goroutines exit. Pending responses
// are delivered; on a server that was never started, queued requests
// receive a response with Err == ErrStopped instead of an answer.
func (s *Server) Stop() {
	s.stateMu.Lock()
	if s.stopped {
		s.stateMu.Unlock()
		return
	}
	s.stopped = true
	started := s.started
	close(s.in)
	close(s.genIn)
	close(s.done)
	s.stateMu.Unlock()
	if started {
		s.wg.Wait()
		return
	}
	for r := range s.in {
		s.tracer.Abort(r.tr)
		r.resp <- Response{Err: ErrStopped}
	}
	for r := range s.genIn {
		s.tracer.Abort(r.tr)
		r.resp <- GenResponse{Err: ErrStopped}
	}
}

// Kill simulates a node crash: admission closes immediately and, unlike
// Stop, in-flight work is abandoned rather than finished. Queued
// requests receive ErrCrashed; in-flight generations are aborted at the
// next fused-step boundary, their responses carrying ErrCrashed plus the
// tokens generated so far — the committed prefix a cluster router
// replays onto another node via SubmitGenResume (truncate-replay).
// Every response channel still receives exactly one send, and all
// goroutines exit before Kill returns.
func (s *Server) Kill() {
	s.stateMu.Lock()
	if s.stopped {
		s.stateMu.Unlock()
		return
	}
	s.stopped = true
	started := s.started
	close(s.kill)
	close(s.in)
	close(s.genIn)
	close(s.done)
	s.stateMu.Unlock()
	if started {
		s.wg.Wait()
		return
	}
	for r := range s.in {
		s.tracer.Abort(r.tr)
		r.resp <- Response{Err: ErrCrashed}
	}
	for r := range s.genIn {
		s.tracer.Abort(r.tr)
		r.resp <- GenResponse{Err: ErrCrashed}
	}
}

// killed reports whether Kill has been called (workers poll it at
// batch/step boundaries — a crash aborts between fused executions, never
// inside one).
func (s *Server) killed() bool {
	select {
	case <-s.kill:
		return true
	default:
		return false
	}
}

// Stopped reports whether admission is closed (Stop or Kill was called).
// Readiness probes consult it: a stopping node must leave rotation even
// while its in-flight work drains.
func (s *Server) Stopped() bool {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	return s.stopped
}

// Status snapshots the signals a level policy decides on.
func (s *Server) Status() Status {
	frac := s.BatteryFraction()
	return Status{
		Level:           s.eng.Level(),
		NumLevels:       s.eng.NumLevels(),
		QueueDepth:      len(s.in) + len(s.genIn),
		QueueCap:        s.cfg.QueueCap,
		BatteryFraction: frac,
		RecentP95MS:     s.rec.RecentP95(),
		TargetMS:        s.cfg.TargetMS,
	}
}

// BatteryFraction returns the simulated state of charge (1 if disabled).
func (s *Server) BatteryFraction() float64 {
	if s.battery == nil {
		return 1
	}
	s.batMu.Lock()
	defer s.batMu.Unlock()
	return s.battery.Fraction()
}

// CollapseBattery forces the simulated battery to the given fraction of
// its capacity (clamped to [0, 1]) — the chaos injector's battery-
// collapse fault. At fraction 0 the node's readiness probe fails on the
// next check and a cluster router routes around it; in-flight work
// still completes (energy drains floor at empty, they never error).
// Reports whether a battery was configured.
func (s *Server) CollapseBattery(frac float64) bool {
	if s.battery == nil {
		return false
	}
	frac = math.Max(0, math.Min(1, frac))
	s.batMu.Lock()
	defer s.batMu.Unlock()
	s.battery.Remaining = s.battery.Capacity * frac
	return true
}

// SetSlowdown sets the straggler factor f applied to every fused
// execution: the worker idles until f times the modeled (or, absent a
// model, measured) duration has elapsed — a transient per-node
// slowdown under chaos injection. f <= 1 clears it.
func (s *Server) SetSlowdown(f float64) {
	if f <= 1 {
		s.slowdown.Store(0)
		return
	}
	s.slowdown.Store(math.Float64bits(f))
}

// Slowdown returns the active straggler factor (1 when unset).
func (s *Server) Slowdown() float64 {
	b := s.slowdown.Load()
	if b == 0 {
		return 1
	}
	return math.Float64frombits(b)
}

// SwitchTo performs a guarded live reconfiguration to level idx: it
// blocks new batch execution, waits for in-flight batches to drain,
// swaps the engine's pattern set, and records the modeled swap cost plus
// the measured kernel-install time. Requests keep queuing throughout —
// none are dropped by a switch.
func (s *Server) SwitchTo(idx int) (float64, error) {
	if idx < 0 || idx >= s.eng.NumLevels() {
		return 0, fmt.Errorf("serve: level %d out of range %d", idx, s.eng.NumLevels())
	}
	s.execMu.Lock()
	defer s.execMu.Unlock()
	if idx == s.eng.Level() {
		return 0, nil
	}
	t0 := time.Now()
	cost, err := s.eng.SwitchTo(idx)
	if err != nil {
		return 0, err
	}
	wall := time.Since(t0)
	s.tracer.ObserveSwitch(wall)
	s.rec.ObserveSwitch(cost, float64(wall.Microseconds())/1000)
	return cost, nil
}

// DenseReference computes the masked dense output for level idx on the
// quiesced engine — the ground truth for verifying served responses.
func (s *Server) DenseReference(idx int, ids []int) (*mat.Matrix, error) {
	s.execMu.Lock()
	defer s.execMu.Unlock()
	return s.eng.DenseForward(idx, ids)
}

// DenseGenReference greedily decodes the masked dense reference
// generation for level idx on the quiesced engine — the ground truth a
// generation served entirely at that level must match token-for-token.
// maxTokens <= 0 picks Config.MaxGenTokens, mirroring SubmitGen, so the
// reference sees the budget the served request actually ran under.
func (s *Server) DenseGenReference(idx int, prompt []int, maxTokens, eos int) ([]int, error) {
	if maxTokens <= 0 {
		maxTokens = s.cfg.MaxGenTokens
	}
	s.execMu.Lock()
	defer s.execMu.Unlock()
	return s.eng.DenseGenerate(idx, prompt, maxTokens, eos)
}

// batcher assembles dynamic batches: flush at MaxBatch or MaxDelay after
// the first request, whichever comes first.
func (s *Server) batcher() {
	defer s.wg.Done()
	defer close(s.batches)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	var batch []*request
	flush := func() {
		if len(batch) == 0 {
			return
		}
		s.batches <- batch
		batch = nil
	}
	for {
		select {
		case r, ok := <-s.in:
			if !ok {
				flush()
				return
			}
			batch = append(batch, r)
			if len(batch) == 1 {
				timer.Reset(s.cfg.MaxDelay)
			}
			if len(batch) >= s.cfg.MaxBatch {
				if !timer.Stop() {
					select {
					case <-timer.C:
					default:
					}
				}
				flush()
			}
		case <-timer.C:
			flush()
		}
	}
}

// worker executes batches on its private model replica, dispatching the
// whole dynamic batch as one packed forward pass through
// Engine.ForwardBatch and splitting the outputs back per request. The
// read lock spans the whole batch so a reconfiguration can only happen
// between batches — requests within one batch all run at one level.
func (s *Server) worker(replica int) {
	defer s.wg.Done()
	var ids [][]int
	for batch := range s.batches {
		if s.killed() {
			for _, r := range batch {
				s.tracer.Abort(r.tr)
				r.resp <- Response{Err: ErrCrashed}
			}
			continue
		}
		s.execMu.RLock()
		s.classifyBatch(replica, s.eng.Level(), batch, &ids)
		s.execMu.RUnlock()
	}
}

// classifyBatch executes one classification batch as a single fused
// forward pass and delivers the per-request responses — the shared core
// of the classification workers and the decode loops' mixed-traffic
// path (where it runs between fused decode steps). Called with execMu
// read-held; ids is the caller's reusable scratch.
func (s *Server) classifyBatch(replica, level int, batch []*request, ids *[][]int) {
	*ids = (*ids)[:0]
	for _, r := range batch {
		*ids = append(*ids, r.ids)
	}
	dispatch := time.Now()
	outs := s.eng.ForwardBatch(replica, *ids)
	s.simDVFSDelay(level, dispatch)
	done := time.Now()
	execMS := float64(done.Sub(dispatch).Microseconds()) / 1000
	fill := float64(len(batch)) / float64(s.cfg.MaxBatch)
	gemms := float64(s.eng.PrunableLinearCount())
	s.rec.ObserveBatch(len(batch), s.cfg.MaxBatch)
	for i, r := range batch {
		queueMS := float64(dispatch.Sub(r.enq).Microseconds()) / 1000
		r.resp <- Response{
			Out:       outs[i],
			Level:     level,
			QueueMS:   queueMS,
			ExecMS:    execMS,
			TotalMS:   queueMS + execMS,
			BatchSize: len(batch),
		}
		r.tr.Add("queue", r.enq, dispatch.Sub(r.enq), "batch", float64(len(batch)), "", 0)
		r.tr.Add("batch_form", dispatch, 0, "fill", fill, "fused_gemms", gemms)
		r.tr.Add("exec", dispatch, done.Sub(dispatch), "level", float64(level), "batch", float64(len(batch)))
		s.tracer.Finish(r.tr)
		s.rec.Observe(level, queueMS, execMS)
		s.drainEnergy(level, 1)
	}
}

// simDVFSDelay stretches the fused execution that started at t0 to its
// modeled duration (a no-op unless Config.SimDVFS, Config.StepFloor, or
// a chaos slowdown is set): having run the work at host speed, the
// worker idles until the larger of f_fastest/f_level times the measured
// time (SimDVFS) and the absolute StepFloor has elapsed, the whole
// target scaled by the active straggler factor. Called with execMu
// read-held, so the stretched execution drains like real execution.
func (s *Server) simDVFSDelay(level int, t0 time.Time) {
	target := s.cfg.StepFloor
	if s.cfg.SimDVFS {
		levels := s.eng.Levels()
		if factor := levels[0].FreqMHz / levels[level].FreqMHz; factor > 1 {
			if t := time.Duration(float64(time.Since(t0)) * factor); t > target {
				target = t
			}
		}
	}
	if f := s.Slowdown(); f > 1 {
		if target <= 0 {
			target = time.Since(t0)
		}
		target = time.Duration(float64(target) * f)
	}
	if target <= 0 {
		return
	}
	if d := target - time.Since(t0); d > 0 {
		time.Sleep(d)
	}
}

// drainEnergy charges the modeled inference energy of n units of work
// at the given level against the simulated battery: one per request in
// classification mode, one per generated token in generation mode.
func (s *Server) drainEnergy(level, n int) {
	if s.battery == nil {
		return
	}
	e := s.cfg.Power.InferenceEnergy(s.eng.Levels()[level], s.cfg.CyclesPerInference) * float64(n)
	s.batMu.Lock()
	defer s.batMu.Unlock()
	if !s.battery.Drain(e) {
		s.battery.Remaining = 0
	}
}

// policyLoop periodically asks the policy for a level and applies it.
func (s *Server) policyLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.PolicyEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
			st := s.Status()
			want := s.cfg.Policy.Decide(st)
			if want != st.Level {
				if _, err := s.SwitchTo(want); err != nil {
					continue
				}
			}
		}
	}
}
