package serve_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rt3/internal/dvfs"
	"rt3/internal/hwsim"
	"rt3/internal/serve"
)

// autotuneLevels is the wide V/F span the closed-loop tests run over
// (fastest first): l1 at 400 MHz models 3.5x the execution time of l6.
func autotuneLevels(t *testing.T) []dvfs.Level {
	t.Helper()
	var out []dvfs.Level
	for _, name := range []string{"l6", "l3", "l1"} {
		l, err := dvfs.LevelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, l)
	}
	return out
}

// simTelemetry models the environment the controller sees when the
// server runs at the given level: windowed p99 latency proportional to
// the level's relative slowdown, and a battery draining with the
// level's relative energy. Deterministic — the closed-loop tests run
// without wall-clock time.
func simTelemetry(costs []hwsim.LevelCost, level int, battery, targetMS float64) serve.Telemetry {
	return serve.Telemetry{
		Window: serve.WindowStats{
			Samples:   64,
			P99MS:     6 * costs[level].RelLatency, // l6 6ms, l3 10.5ms, l1 21ms
			FillRatio: 0.5,
		},
		BatteryFraction: battery,
		Level:           level,
		TargetMS:        targetMS,
	}
}

// TestAutotunerTraceReplay pins the auditability contract: feeding the
// recorded telemetry back through a fresh controller with the same
// configuration and seed reproduces every decision exactly.
func TestAutotunerTraceReplay(t *testing.T) {
	levels := autotuneLevels(t)
	power := dvfs.DefaultPowerModel()
	cfg := serve.AutotuneConfig{Seed: 11}
	at, err := serve.NewAutotuner(levels, power, 2e6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	costs := at.LevelCosts()

	// drive a live-looking run: telemetry follows the controller's own
	// level choices while the battery drains
	battery, level := 1.0, 0
	for i := 0; i < 300; i++ {
		dec := at.Step(simTelemetry(costs, level, battery, 15))
		level = dec.Level
		battery = math.Max(0, battery-costs[level].RelEnergy/250)
	}
	tr := at.Trace()
	if len(tr.Decisions) != 300 {
		t.Fatalf("trace has %d decisions, want 300", len(tr.Decisions))
	}

	replayed, err := serve.ReplayTrace(levels, power, 2e6, cfg, tr)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	for i := range replayed {
		if !replayed[i].SameAs(tr.Decisions[i]) {
			t.Fatalf("decision %d diverged: live %+v vs replay %+v", i, tr.Decisions[i], replayed[i])
		}
	}
}

// TestAutotunerTraceCapTruncationNotReplayable: once TraceCap evicts
// decisions the learning history is incomplete and replay must refuse.
func TestAutotunerTraceCapTruncationNotReplayable(t *testing.T) {
	levels := autotuneLevels(t)
	power := dvfs.DefaultPowerModel()
	cfg := serve.AutotuneConfig{Seed: 3, TraceCap: 16}
	at, err := serve.NewAutotuner(levels, power, 2e6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	costs := at.LevelCosts()
	for i := 0; i < 40; i++ {
		at.Step(simTelemetry(costs, 0, 1, 15))
	}
	tr := at.Trace()
	if tr.Dropped != 24 || len(tr.Decisions) != 16 {
		t.Fatalf("Dropped=%d len=%d, want 24/16", tr.Dropped, len(tr.Decisions))
	}
	if _, err := serve.ReplayTrace(levels, power, 2e6, cfg, tr); err == nil {
		t.Fatal("truncated trace replayed without error")
	}
}

// TestAutotunerBeatsWorstStaticLevel runs the controller and each
// static level through the same deterministic environment and compares
// cumulative online reward: the closed loop must beat the worst static
// choice (l1, which violates the target every window) by a wide margin,
// and must end within reach of the best.
func TestAutotunerBeatsWorstStaticLevel(t *testing.T) {
	levels := autotuneLevels(t)
	power := dvfs.DefaultPowerModel()
	const ticks, targetMS, cycles = 500, 15.0, 2e6
	costs := hwsim.LevelCosts(levels, power, cycles)

	// static arms: replaying the same environment at a pinned level
	static := make([]float64, len(levels))
	for lvl := range levels {
		battery := 1.0
		for i := 0; i < ticks; i++ {
			tel := simTelemetry(costs, lvl, battery, targetMS)
			r := 1.0
			if tel.Window.P99MS > targetMS {
				r = -1
			} else {
				r += 0.8 * (1 - costs[lvl].RelEnergy) * (1 - battery + 0.2)
			}
			static[lvl] += r
			battery = math.Max(0, battery-costs[lvl].RelEnergy/250)
		}
	}

	at, err := serve.NewAutotuner(levels, power, cycles, serve.AutotuneConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var closed float64
	battery, level := 1.0, 0
	for i := 0; i < ticks; i++ {
		dec := at.Step(simTelemetry(costs, level, battery, targetMS))
		closed += dec.Reward
		level = dec.Level
		battery = math.Max(0, battery-costs[level].RelEnergy/250)
	}

	worst, best := static[0], static[0]
	for _, s := range static[1:] {
		worst = math.Min(worst, s)
		best = math.Max(best, s)
	}
	t.Logf("closed-loop %.1f, static %v (worst %.1f, best %.1f)", closed, static, worst, best)
	if worst != static[2] {
		t.Fatalf("environment sanity: l1 should be the worst static level, got %v", static)
	}
	if closed <= worst {
		t.Fatalf("closed loop (%.1f) did not beat the worst static level (%.1f)", closed, worst)
	}
	if closed < 0.5*best {
		t.Fatalf("closed loop (%.1f) ended far from the best static level (%.1f)", closed, best)
	}
}

// TestAutotuneServerLiveTrace drives a real server with the closed loop
// enabled under load and checks the contract end to end: decisions were
// made from live telemetry, applied switches drained cleanly (responses
// all verify against dense execution), and the recorded trace replays.
func TestAutotuneServerLiveTrace(t *testing.T) {
	eng, _ := newTestDeployment(t, 2)
	defer eng.Close()
	atCfg := serve.AutotuneConfig{
		Every:   2 * time.Millisecond,
		Epsilon: 0.9, // switch-happy: this test is about drains, not learning
		Seed:    5,
	}
	srv := serve.New(eng, serve.Config{
		MaxBatch: 4, MaxDelay: time.Millisecond, QueueCap: 1024,
		TargetMS: 20, BatteryJ: 0.05, Autotune: &atCfg,
	})
	srv.Start()
	defer srv.Stop()

	report, err := serve.RunLoad(srv, serve.LoadSpec{
		Duration: 250 * time.Millisecond,
		StartRPS: 300, EndRPS: 900,
		BurstPeriod: 60 * time.Millisecond, BurstFactor: 3,
		SeqLen: 10, Vocab: 24, Seed: 8, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Mismatches != 0 {
		t.Fatalf("%d responses mismatched dense execution across live switches", report.Mismatches)
	}
	tr, ok := srv.AutotuneTrace()
	if !ok || len(tr.Decisions) == 0 {
		t.Fatal("no autotune trace recorded")
	}
	applied := 0
	for _, d := range tr.Decisions {
		if d.Switched {
			applied++
		}
	}
	if applied == 0 {
		t.Fatal("closed loop never applied a switch under a 0.9-epsilon policy")
	}
	if report.Switches == 0 {
		t.Fatal("recorder saw no switches")
	}
	if _, err := serve.ReplayTrace(eng.Levels(), dvfs.DefaultPowerModel(), 2e6, atCfg, tr); err != nil {
		t.Fatalf("live trace replay: %v", err)
	}
}

// TestAutotuneGenerateMode: the closed loop drives switches at
// decode-step granularity while generations are in flight.
func TestAutotuneGenerateMode(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	defer eng.Close()
	atCfg := serve.AutotuneConfig{Every: time.Millisecond, Epsilon: 0.9, Seed: 4}
	srv := serve.New(eng, serve.Config{
		Generate: true, MaxBatch: 4, QueueCap: 256,
		MaxGenTokens: 12, TargetMS: 20, BatteryJ: 0.05, Autotune: &atCfg,
	})
	srv.Start()
	defer srv.Stop()

	rng := rand.New(rand.NewSource(2))
	var chans []<-chan serve.GenResponse
	for i := 0; i < 48; i++ {
		prompt := make([]int, 3+rng.Intn(5))
		for j := range prompt {
			prompt[j] = rng.Intn(24)
		}
		ch, err := srv.SubmitGen(prompt, 8, -1)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
		time.Sleep(time.Millisecond)
	}
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("generation %d: %v", i, resp.Err)
		}
		if len(resp.Tokens) == 0 {
			t.Fatalf("generation %d returned no tokens", i)
		}
	}
	tr, ok := srv.AutotuneTrace()
	if !ok || len(tr.Decisions) == 0 {
		t.Fatal("no autotune trace in generate mode")
	}
}

// TestRecorderWindowEdgeCases pins the telemetry window's empty and
// single-sample behaviour — the states the controller sees at startup.
func TestRecorderWindowEdgeCases(t *testing.T) {
	rec := serve.NewRecorder([]string{"l6", "l3"})

	empty := rec.RecentStats()
	if empty.Samples != 0 {
		t.Fatalf("empty window Samples = %d", empty.Samples)
	}
	if empty.P50MS != 0 || empty.P99MS != 0 || empty.FillRatio != 0 {
		t.Fatalf("empty window not all-zero: %+v", empty)
	}

	rec.Observe(0, 1.5, 2.5)
	one := rec.RecentStats()
	if one.Samples != 1 {
		t.Fatalf("Samples = %d, want 1", one.Samples)
	}
	if one.P50MS != 4 || one.P99MS != 4 {
		t.Fatalf("single sample quantiles: p50 %g p99 %g, want 4/4", one.P50MS, one.P99MS)
	}
	if one.QueueP50MS != 1.5 || one.ExecP99MS != 2.5 {
		t.Fatalf("component quantiles: %+v", one)
	}
	if one.FillRatio != 0 {
		t.Fatalf("no batches dispatched but FillRatio = %g", one.FillRatio)
	}

	rec.ObserveBatch(2, 4)
	rec.ObserveBatch(4, 4)
	if got := rec.RecentStats().FillRatio; got != 0.75 {
		t.Fatalf("recent fill = %g, want 0.75", got)
	}

	// Overall pools across levels
	rec.Observe(1, 0.5, 1.5)
	all := rec.Overall()
	if all.Count != 2 || all.Level != "all" {
		t.Fatalf("Overall: %+v", all)
	}
	if all.MeanMS != 3 { // (4 + 2) / 2
		t.Fatalf("Overall mean = %g, want 3", all.MeanMS)
	}

	// counters
	done, tokens := rec.Counters()
	if done != 2 || tokens != 0 {
		t.Fatalf("Counters = %d/%d, want 2/0", done, tokens)
	}
	rec.ObserveTokens(7)
	if _, tokens = rec.Counters(); tokens != 7 {
		t.Fatalf("tokens = %d, want 7", tokens)
	}
}
