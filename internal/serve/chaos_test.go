package serve_test

import (
	"testing"

	"rt3/internal/serve"
)

// TestCollapseBattery pins the battery-collapse fault hook: the charge
// jumps to the requested fraction (clamped), and servers without a
// battery report the hook as inapplicable.
func TestCollapseBattery(t *testing.T) {
	eng, _ := newTestDeployment(t, 1)
	srv := serve.New(eng, serve.Config{BatteryJ: 100})
	if !srv.CollapseBattery(0.5) {
		t.Fatal("collapse on battery-backed server should apply")
	}
	if f := srv.BatteryFraction(); f != 0.5 {
		t.Fatalf("fraction %g, want 0.5", f)
	}
	if srv.CollapseBattery(-3); srv.BatteryFraction() != 0 {
		t.Fatalf("fraction %g after clamp-low, want 0", srv.BatteryFraction())
	}
	if srv.CollapseBattery(7); srv.BatteryFraction() != 1 {
		t.Fatalf("fraction %g after clamp-high, want 1", srv.BatteryFraction())
	}
	srv.Stop()

	eng2, _ := newTestDeployment(t, 1)
	noBat := serve.New(eng2, serve.Config{})
	if noBat.CollapseBattery(0.5) {
		t.Fatal("collapse without a battery should report false")
	}
	if f := noBat.BatteryFraction(); f != 1 {
		t.Fatalf("batteryless fraction %g, want 1", f)
	}
	noBat.Stop()
}

// TestSetSlowdown pins the straggler-factor accessors and checks a
// slowed server still serves correct responses (the factor only
// stretches the modeled delay).
func TestSetSlowdown(t *testing.T) {
	eng, _ := newTestDeployment(t, 1)
	srv := serve.New(eng, serve.Config{MaxBatch: 2, QueueCap: 8})
	if f := srv.Slowdown(); f != 1 {
		t.Fatalf("default slowdown %g, want 1", f)
	}
	srv.SetSlowdown(3)
	if f := srv.Slowdown(); f != 3 {
		t.Fatalf("slowdown %g, want 3", f)
	}
	srv.SetSlowdown(0.25) // <= 1 clears
	if f := srv.Slowdown(); f != 1 {
		t.Fatalf("slowdown %g after clear, want 1", f)
	}
	srv.SetSlowdown(2)
	srv.Start()
	defer srv.Stop()
	ch, err := srv.Submit([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	resp := <-ch
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	ref, err := srv.DenseReference(resp.Level, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Out.Rows != ref.Rows || resp.Out.Cols != ref.Cols {
		t.Fatal("slowed response shape differs from dense reference")
	}
}
