package serve

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"rt3/internal/mat"
)

// LoadSpec describes an open-loop traffic replay: arrivals follow a
// linear rate ramp from StartRPS to EndRPS over Duration, regardless of
// how fast the server drains them. BurstPeriod/BurstFactor additionally
// modulate the ramp with a square wave for bursty profiles.
type LoadSpec struct {
	Duration time.Duration
	StartRPS float64
	EndRPS   float64

	// BurstPeriod, when > 0, overlays bursts on the ramp: during the
	// second half of every period the instantaneous rate is multiplied
	// by BurstFactor (default 3 when a period is set). The resulting
	// square-wave load alternates calm and pressured phases — the
	// regime a closed-loop controller has to ride, where a static level
	// is either too slow in the bursts or too hungry in the valleys.
	BurstPeriod time.Duration
	BurstFactor float64

	// Cancel, when non-nil, ends the arrival phase early once closed —
	// the graceful-drain path: offering stops immediately, every already
	// admitted request is still awaited, and the report covers what ran.
	// rt3serve's SIGINT/SIGTERM handler drives this.
	Cancel <-chan struct{}

	// SeqLen and Vocab shape the synthetic token sequences.
	SeqLen int
	Vocab  int
	// PoolSize is the number of distinct sequences replayed (default 32);
	// a small pool keeps post-hoc verification cheap.
	PoolSize int
	Seed     int64

	// Gen switches the workload to generation requests (SubmitGen on a
	// Generate-mode server): each arrival samples a prompt length
	// uniformly from [GenPromptMin, GenPromptMax] and a max-output
	// budget uniformly from [GenOutMin, GenOutMax], driving the
	// KV-cached continuous-batching decode path open-loop. Incompatible
	// with Verify (generation has no dense per-response reference).
	Gen bool
	// GenPromptMin/Max bound the sampled prompt lengths (default 4..12).
	GenPromptMin, GenPromptMax int
	// GenOutMin/Max bound the sampled max-token budgets (default 4..16).
	GenOutMin, GenOutMax int

	// Verify recomputes every response against masked dense execution at
	// the level it was served on, after the run (requires the caller not
	// to Stop the server until RunLoad returns).
	Verify bool
	// Tolerance bounds |packed - dense| per element (default 1e-9).
	Tolerance float64
}

func (s LoadSpec) withDefaults() LoadSpec {
	if s.PoolSize <= 0 {
		s.PoolSize = 32
	}
	if s.SeqLen <= 0 {
		s.SeqLen = 8
	}
	if s.Vocab <= 0 {
		s.Vocab = 16
	}
	if s.Tolerance <= 0 {
		s.Tolerance = 1e-9
	}
	if s.StartRPS <= 0 {
		s.StartRPS = 100
	}
	if s.EndRPS <= 0 {
		s.EndRPS = s.StartRPS
	}
	if s.GenPromptMin <= 0 {
		s.GenPromptMin = 4
	}
	if s.GenPromptMax < s.GenPromptMin {
		s.GenPromptMax = s.GenPromptMin + 8
	}
	if s.GenOutMin <= 0 {
		s.GenOutMin = 4
	}
	if s.GenOutMax < s.GenOutMin {
		s.GenOutMax = s.GenOutMin + 12
	}
	if s.BurstPeriod > 0 && s.BurstFactor <= 0 {
		s.BurstFactor = 3
	}
	return s
}

// LoadReport summarizes one load-generator run.
type LoadReport struct {
	Offered   int
	Completed int
	Dropped   int
	Elapsed   time.Duration

	ThroughputRPS float64
	MeanBatch     float64
	// FillRatio is dispatched requests over dispatched batch capacity
	// (MeanBatch / MaxBatch): how much of the configured fusion width the
	// traffic actually used.
	FillRatio float64
	Levels    []LevelStats
	// Overall pools every request regardless of level (Level == "all").
	Overall LevelStats

	Switches      int
	SwitchModelMS float64 // modeled pattern-swap cost, cumulative
	SwitchWallMS  float64 // measured kernel-install time, cumulative

	BatteryFraction float64

	Verified   int
	Mismatches int

	// Generation-mode results (Gen workloads only).
	GenTokens    int     // tokens generated across completed requests
	TokensPerSec float64 // generated-token throughput over the run
	MeanGenLen   float64 // mean generated tokens per completed request
	MeanSteps    float64 // mean fused decode steps each request rode in
}

// String renders the report in the repo's table style.
func (r *LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offered %d  completed %d  dropped %d  in %.2fs  (%.1f req/s, mean batch %.1f, fill %.0f%%)\n",
		r.Offered, r.Completed, r.Dropped, r.Elapsed.Seconds(), r.ThroughputRPS, r.MeanBatch, r.FillRatio*100)
	b.WriteString(FormatLevelStats(r.Levels))
	fmt.Fprintf(&b, "switches %d  modeled swap cost %.3f ms  kernel install %.3f ms\n",
		r.Switches, r.SwitchModelMS, r.SwitchWallMS)
	fmt.Fprintf(&b, "battery %.0f%%\n", r.BatteryFraction*100)
	if r.Verified > 0 {
		fmt.Fprintf(&b, "verified %d responses against dense execution: %d mismatches\n", r.Verified, r.Mismatches)
	}
	if r.GenTokens > 0 {
		fmt.Fprintf(&b, "generated %d tokens (%.0f tok/s, mean %.1f tokens over %.1f steps per request)\n",
			r.GenTokens, r.TokensPerSec, r.MeanGenLen, r.MeanSteps)
	}
	return b.String()
}

// pending tracks one in-flight request of the replay.
type pending struct {
	poolIdx int
	ch      <-chan Response
}

// RunLoad replays open-loop traffic against a started server, waits for
// every admitted request to complete, and reports latency, throughput,
// switching, and (optionally) correctness versus dense execution. A
// Gen spec instead drives the continuous-batching decode path with
// sampled prompt/output length distributions and reports generated-
// token throughput. The server is left running.
func RunLoad(s *Server, spec LoadSpec) (*LoadReport, error) {
	spec = spec.withDefaults()
	if spec.Duration <= 0 {
		return nil, fmt.Errorf("serve: LoadSpec.Duration must be positive")
	}
	if spec.Gen && spec.Verify {
		return nil, fmt.Errorf("serve: LoadSpec.Verify is not supported for generation workloads")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	pool := make([][]int, spec.PoolSize)
	for i := range pool {
		n := spec.SeqLen
		if spec.Gen {
			n = spec.GenPromptMin + rng.Intn(spec.GenPromptMax-spec.GenPromptMin+1)
		}
		seq := make([]int, n)
		for j := range seq {
			seq[j] = rng.Intn(spec.Vocab)
		}
		pool[i] = seq
	}

	report := &LoadReport{}
	var inflight []pending
	var genFlight []<-chan GenResponse
	start := time.Now()
	// sched is the arrival clock: virtual time advanced by the rate
	// profile rather than wall-clock reads, so the arrival count and
	// every sampled request are a pure function of the spec — two runs
	// with the same seed offer the identical request sequence even when
	// the server stalls the submitting goroutine.
	sched := time.Duration(0)
arrivals:
	for {
		if spec.Cancel != nil {
			select {
			case <-spec.Cancel:
				break arrivals
			default:
			}
		}
		frac := float64(sched) / float64(spec.Duration)
		rps := spec.StartRPS + (spec.EndRPS-spec.StartRPS)*frac
		if spec.BurstPeriod > 0 && sched%spec.BurstPeriod >= spec.BurstPeriod/2 {
			rps *= spec.BurstFactor
		}
		sched += time.Duration(float64(time.Second) / rps)
		if sched >= spec.Duration {
			break
		}
		if d := time.Until(start.Add(sched)); d > 0 {
			time.Sleep(d)
		}
		idx := rng.Intn(len(pool))
		var ch <-chan Response
		var gch <-chan GenResponse
		var err error
		if spec.Gen {
			budget := spec.GenOutMin + rng.Intn(spec.GenOutMax-spec.GenOutMin+1)
			gch, err = s.SubmitGen(pool[idx], budget, -1)
		} else {
			ch, err = s.Submit(pool[idx])
		}
		report.Offered++
		switch err {
		case nil:
			if spec.Gen {
				genFlight = append(genFlight, gch)
			} else {
				inflight = append(inflight, pending{poolIdx: idx, ch: ch})
			}
		case ErrQueueFull:
			report.Dropped++
		default:
			return nil, err
		}
	}

	responses := make([]Response, len(inflight))
	for i, p := range inflight {
		responses[i] = <-p.ch
	}
	var steps int
	for _, gch := range genFlight {
		resp := <-gch
		if resp.Err != nil {
			return nil, resp.Err
		}
		report.GenTokens += len(resp.Tokens)
		steps += resp.Steps
	}
	report.Elapsed = time.Since(start)
	report.Completed = len(responses) + len(genFlight)
	report.ThroughputRPS = float64(report.Completed) / report.Elapsed.Seconds()
	if n := len(genFlight); n > 0 {
		report.TokensPerSec = float64(report.GenTokens) / report.Elapsed.Seconds()
		report.MeanGenLen = float64(report.GenTokens) / float64(n)
		report.MeanSteps = float64(steps) / float64(n)
	}
	report.MeanBatch = s.Recorder().MeanBatch()
	report.FillRatio = s.Recorder().FillRatio()
	report.Levels = s.Recorder().Snapshot()
	report.Overall = s.Recorder().Overall()
	report.Switches, report.SwitchModelMS, report.SwitchWallMS = s.Recorder().Switches()
	report.BatteryFraction = s.BatteryFraction()

	if spec.Verify {
		// recompute each (level, sequence) pair once via dense execution
		refs := map[[2]int]*mat.Matrix{}
		for i, p := range inflight {
			key := [2]int{responses[i].Level, p.poolIdx}
			ref, ok := refs[key]
			if !ok {
				var err error
				ref, err = s.DenseReference(responses[i].Level, pool[p.poolIdx])
				if err != nil {
					return nil, err
				}
				refs[key] = ref
			}
			report.Verified++
			if !mat.Equal(responses[i].Out, ref, spec.Tolerance) {
				report.Mismatches++
			}
		}
	}
	return report, nil
}
