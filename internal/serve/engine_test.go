package serve_test

import (
	"fmt"
	"math/rand"
	"testing"

	"rt3/internal/mat"
	"rt3/internal/rtswitch"
	"rt3/internal/serve"
	"rt3/internal/transformer"
)

// newTestModel builds a fresh replica with the newTestDeployment
// topology; the engine overwrites its weights from the bundle.
func newTestModel() serve.Model {
	return transformer.NewClassifier(transformer.Config{
		Vocab: 24, Dim: 8, Heads: 2, FFHidden: 16, EncLayers: 2, SeqLen: 10, Classes: 3,
	}, rand.New(rand.NewSource(3)))
}

// TestEngineFailedSwitchRestoresKernels exercises the restore path: when
// the reconfigurator rejects a switch, the engine must keep serving the
// previously active level with consistent kernels — level unchanged,
// packed output still element-identical to masked dense execution.
func TestEngineFailedSwitchRestoresKernels(t *testing.T) {
	eng, _ := newTestDeployment(t, 1)
	if _, err := eng.SwitchTo(1); err != nil {
		t.Fatal(err)
	}
	seqs := randSeqs(3, 10, 24, 41)
	before := make([]*mat.Matrix, len(seqs))
	for i, ids := range seqs {
		before[i] = eng.Forward(0, ids)
	}

	if _, err := eng.SwitchTo(eng.NumLevels()); err == nil {
		t.Fatal("out-of-range switch accepted")
	}
	if got := eng.Level(); got != 1 {
		t.Fatalf("level %d after failed switch, want 1", got)
	}
	for i, ids := range seqs {
		got := eng.Forward(0, ids)
		if !mat.Equal(got, before[i], 0) {
			t.Fatalf("request %d: output changed after failed switch", i)
		}
		ref, err := eng.DenseForward(1, ids)
		if err != nil {
			t.Fatal(err)
		}
		if !mat.Equal(got, ref, 1e-9) {
			t.Fatalf("request %d: packed forward differs from dense after failed switch", i)
		}
	}
	// the engine must still switch cleanly afterwards
	if _, err := eng.SwitchTo(2); err != nil {
		t.Fatal(err)
	}
	if eng.Level() != 2 {
		t.Fatalf("level %d after recovery switch, want 2", eng.Level())
	}
}

// TestEngineAlternateFormats deploys the same bundle through every
// non-default registry format: the unified kernel API means any format
// serves an RT3 level with output identical to masked dense execution.
func TestEngineAlternateFormats(t *testing.T) {
	for _, format := range []string{"dense", "coo", "csr", "blockcsr"} {
		format := format
		t.Run(format, func(t *testing.T) {
			eng, bundle := newTestDeployment(t, 1)
			alt, err := serve.NewEngineConfigured(bundle, []serve.Model{newTestModel()},
				rtswitch.DefaultSwitchCostModel(), serve.EngineConfig{Format: format})
			if err != nil {
				t.Fatal(err)
			}
			if alt.Format() != format {
				t.Fatalf("Format() = %q", alt.Format())
			}
			seqs := randSeqs(3, 10, 24, 43)
			for lvl := 0; lvl < alt.NumLevels(); lvl++ {
				if _, err := alt.SwitchTo(lvl); err != nil {
					t.Fatal(err)
				}
				if _, err := eng.SwitchTo(lvl); err != nil {
					t.Fatal(err)
				}
				for _, ids := range seqs {
					got := alt.Forward(0, ids)
					want := eng.Forward(0, ids)
					if !mat.Equal(got, want, 1e-9) {
						t.Fatalf("level %d: %s engine differs from pattern engine", lvl, format)
					}
				}
			}
		})
	}
}

// TestEngineKernelWorkers checks intra-kernel parallelism end to end:
// a KernelWorkers > 1 engine must produce identical outputs.
func TestEngineKernelWorkers(t *testing.T) {
	eng, bundle := newTestDeployment(t, 1)
	par, err := serve.NewEngineConfigured(bundle, []serve.Model{newTestModel()},
		rtswitch.DefaultSwitchCostModel(), serve.EngineConfig{KernelWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	seqs := randSeqs(4, 10, 24, 47)
	for lvl := 0; lvl < eng.NumLevels(); lvl++ {
		if _, err := eng.SwitchTo(lvl); err != nil {
			t.Fatal(err)
		}
		if _, err := par.SwitchTo(lvl); err != nil {
			t.Fatal(err)
		}
		for _, ids := range seqs {
			if !mat.Equal(par.Forward(0, ids), eng.Forward(0, ids), 1e-12) {
				t.Fatalf("level %d: parallel-kernel engine differs", lvl)
			}
		}
	}
}

// TestEngineKernelWorkersConcurrentReplicas is the regression test for
// the shared-wrapper race: with KernelWorkers > 1 every replica must own
// its own parallel executor (the wrapper carries per-call state), so
// concurrent forward passes on different replicas — exactly what the
// server's worker pool does — stay correct. Run under -race in CI.
func TestEngineKernelWorkersConcurrentReplicas(t *testing.T) {
	_, bundle := newTestDeployment(t, 1)
	eng, err := serve.NewEngineConfigured(bundle,
		[]serve.Model{newTestModel(), newTestModel()},
		rtswitch.DefaultSwitchCostModel(), serve.EngineConfig{KernelWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	seqs := randSeqs(2, 10, 24, 59)
	refs := make([]*mat.Matrix, len(seqs))
	for i, ids := range seqs {
		var err error
		refs[i], err = eng.DenseForward(0, ids)
		if err != nil {
			t.Fatal(err)
		}
	}
	const rounds = 50
	errc := make(chan error, 2)
	for r := 0; r < 2; r++ {
		r := r
		go func() {
			for i := 0; i < rounds; i++ {
				got := eng.Forward(r, seqs[r])
				if !mat.Equal(got, refs[r], 1e-9) {
					errc <- fmt.Errorf("replica %d round %d: output corrupted", r, i)
					return
				}
			}
			errc <- nil
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestEngineUnknownFormat: a bad format name must fail deployment with a
// helpful error, not panic at serving time.
func TestEngineUnknownFormat(t *testing.T) {
	_, bundle := newTestDeployment(t, 1)
	_, err := serve.NewEngineConfigured(bundle, []serve.Model{newTestModel()},
		rtswitch.DefaultSwitchCostModel(), serve.EngineConfig{Format: "nope"})
	if err == nil {
		t.Fatal("unknown kernel format accepted")
	}
}

// TestEngineForwardOutputsIndependent pins the boundary-copy contract:
// replicas reuse activation buffers internally, so successive Forward
// results must still be independent matrices the caller can retain.
func TestEngineForwardOutputsIndependent(t *testing.T) {
	eng, _ := newTestDeployment(t, 1)
	seqs := randSeqs(2, 10, 24, 53)
	a := eng.Forward(0, seqs[0])
	aCopy := a.Clone()
	b := eng.Forward(0, seqs[1])
	if &a.Data[0] == &b.Data[0] {
		t.Fatal("successive Forward outputs share storage")
	}
	if !mat.Equal(a, aCopy, 0) {
		t.Fatal("earlier response mutated by a later forward pass")
	}
	ref, err := eng.DenseForward(0, seqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(a, ref, 1e-9) {
		t.Fatal("retained response no longer matches dense execution")
	}
}
