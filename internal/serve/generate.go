package serve

import (
	"time"

	"rt3/internal/obs"
	"rt3/internal/spec"
	"rt3/internal/transformer"
)

// GenResponse is the answer to one generation request.
type GenResponse struct {
	// Err is non-nil when the request was abandoned: ErrStopped when the
	// server was stopped before ever starting, or ErrCrashed when Kill
	// abandoned it mid-flight — in the latter case Tokens carries the
	// committed partial output (possibly empty), which a router resumes
	// on another node via SubmitGenResume. All other error cases leave
	// the remaining fields zero.
	Err error
	// Tokens holds the generated tokens (the prompt excluded; a resumed
	// request's replayed prefix included). When an EOS token was
	// requested and produced it is the final entry.
	Tokens []int
	// Level is the V/F level active when the generation completed. A
	// live switch mid-generation is legal — the sequence keeps its KV
	// cache and continues on the new level's kernels, exactly as queued
	// batch requests span switches today.
	Level int
	// Steps is the number of fused decode steps the sequence rode in —
	// len(Tokens)-1 for a fresh generation (the first token comes from
	// the prefill pass); a resumed generation additionally rides one
	// replay step per prefix token fed back through the cache.
	Steps int
	// QueueMS is admission-to-prefill-dispatch wait. PrefillMS is the
	// fused prompt pass's execution time (shared by every sequence
	// admitted in it). DecodeMS accumulates the fused decode steps this
	// sequence was active in. TotalMS is admission to completion.
	QueueMS, PrefillMS, DecodeMS, TotalMS float64
	// SpecRounds/SpecDrafted/SpecAccepted account this request's ride on
	// self-speculative decoding: draft/verify rounds it participated in,
	// draft tokens proposed for it, and how many verification accepted.
	// All zero when the request did not speculate — the output tokens are
	// identical either way.
	SpecRounds, SpecDrafted, SpecAccepted int
	// CachedRows is the number of prefill K/V rows served from the radix
	// prefix cache instead of being recomputed (split requests only).
	CachedRows int
}

// genReq is one queued generation request. A non-empty prefix marks a
// resumed generation: tokens already committed by a previous attempt
// (e.g. on a node that crashed) that the decode worker replays through
// the KV cache before generating new ones. memLen > 0 marks a split
// request (prompt[:memLen] is the frozen-memory prefix, eligible for
// the radix prefix cache); spec opts the request into self-speculative
// decoding.
type genReq struct {
	prompt    []int
	prefix    []int
	memLen    int
	spec      bool
	maxTokens int
	eos       int
	enq       time.Time
	resp      chan GenResponse
	tr        *obs.Trace // nil when tracing is disabled
}

// SubmitGen admits one generation request and returns the channel its
// response will arrive on (buffered; exactly one send). maxTokens <= 0
// picks Config.MaxGenTokens; eos < 0 disables EOS detection. It fails
// fast with ErrNotGenerating on a server without Generate mode,
// ErrEmptyRequest for an empty prompt, ErrQueueFull at capacity, and
// ErrStopped after Stop.
func (s *Server) SubmitGen(prompt []int, maxTokens, eos int) (<-chan GenResponse, error) {
	return s.SubmitGenOpts(prompt, GenOpts{MaxTokens: maxTokens, EOS: eos})
}

// SubmitGenResume admits a generation that resumes from an already
// committed token prefix — the failover path of a cluster router: when a
// node crashes mid-generation its partial GenResponse carries the tokens
// generated so far, and re-submitting them here on a healthy node
// continues the stream without discarding them. The worker re-prefills
// the prompt (rebuilding the frozen encoder memory) and replays the
// prefix through fused decode steps — teacher-forcing the recorded
// tokens, so the rebuilt KV cache is bit-identical to the crashed node's
// at the same level (the truncate-replay equivalence DecodeState
// TruncateTo pins) — then decodes on. The response's Tokens include the
// prefix; maxTokens still bounds the total generated tokens, prefix
// included. A prefix that already ends the generation (EOS or budget)
// completes immediately without touching a worker. A nil prefix is
// exactly SubmitGen.
func (s *Server) SubmitGenResume(prompt, prefix []int, maxTokens, eos int) (<-chan GenResponse, error) {
	return s.SubmitGenOpts(prompt, GenOpts{Prefix: prefix, MaxTokens: maxTokens, EOS: eos})
}

// genSlot is one active sequence in a decode worker's step loop. feed
// indexes the token the next fused step feeds: it trails len(tokens)-1
// while a resumed prefix is being replayed through the cache (produced
// logits are discarded — the tokens are already committed) and sticks to
// the last token once caught up, when every step appends its argmax.
type genSlot struct {
	req    *genReq
	st     *transformer.DecodeState
	tokens []int
	feed   int
	steps  int
	// draft is the draft-level KV state of a speculating slot (recycled
	// through the same free-list on eviction); seq is its speculation
	// bookkeeping. Both nil for plain slots. A speculating slot only
	// enters draft/verify rounds once caught up (feed == len(tokens)-1):
	// a resumed prefix replays through plain fused steps first, and the
	// round's own catch-up teacher-forces the draft state.
	draft      *transformer.DecodeState
	seq        *spec.Seq
	cachedRows int
	queueMS    float64
	prefillMS  float64
	decodeMS   float64
}

// done reports whether the slot's latest token finished the sequence.
func (sl *genSlot) done() bool {
	last := sl.tokens[len(sl.tokens)-1]
	return last == sl.req.eos || len(sl.tokens) >= sl.req.maxTokens
}

// decodeWorker is the continuous-batching step loop owning one engine
// replica: every iteration it admits queued requests into free decode
// slots (prefilling them as one fused packed pass), advances all active
// sequences by one fused decode step, and evicts sequences that hit EOS
// or their token budget — their responses are delivered and their KV
// caches recycled through a free-list, so steady-state decoding
// allocates nothing. Queued classification requests ride the same loop:
// each iteration drains up to MaxBatch of them and executes the batch
// as one fused forward pass between decode steps (mixed traffic, one
// level per iteration). The execMu read lock spans one admission +
// classification batch + step, so a live pattern-set/V/F switch drains
// in-flight work at step granularity, exactly as it drains batches in
// classification mode.
func (s *Server) decodeWorker(replica int) {
	defer s.wg.Done()
	var (
		slots    []*genSlot
		plain    []*genSlot
		specs    []*genSlot
		finished []*genSlot
		free     []*transformer.DecodeState
		admit    []*genReq
		states   []*transformer.DecodeState
		tokens   []int
		cls      []*request
		clsIDs   [][]int
	)
	genOpen, clsOpen := true, true
	for genOpen || clsOpen || len(slots) > 0 {
		// a crash abandons in-flight sequences at the step boundary:
		// responses carry ErrCrashed plus the committed token prefix a
		// router resumes elsewhere via SubmitGenResume
		if s.killed() {
			level := s.eng.Level()
			for _, sl := range slots {
				s.tracer.Abort(sl.req.tr)
				sl.req.resp <- GenResponse{
					Err:    ErrCrashed,
					Tokens: append([]int(nil), sl.tokens...),
					Level:  level,
					Steps:  sl.steps,
				}
			}
			for r := range s.genIn {
				s.tracer.Abort(r.tr)
				r.resp <- GenResponse{Err: ErrCrashed}
			}
			for r := range s.in {
				s.tracer.Abort(r.tr)
				r.resp <- Response{Err: ErrCrashed}
			}
			return
		}
		admit = admit[:0]
		cls = cls[:0]
		// block only when fully idle: no active slots and nothing drained
		// yet — the first arrival on either queue wakes the loop
		if len(slots) == 0 {
			switch {
			case genOpen && clsOpen:
				select {
				case r, ok := <-s.genIn:
					if !ok {
						genOpen = false
					} else {
						admit = append(admit, r)
					}
				case r, ok := <-s.in:
					if !ok {
						clsOpen = false
					} else {
						cls = append(cls, r)
					}
				}
			case genOpen:
				r, ok := <-s.genIn
				if !ok {
					genOpen = false
				} else {
					admit = append(admit, r)
				}
			case clsOpen:
				r, ok := <-s.in
				if !ok {
					clsOpen = false
				} else {
					cls = append(cls, r)
				}
			}
		}
		// non-blocking top-ups on both queues
	genTop:
		for genOpen && len(slots)+len(admit) < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.genIn:
				if !ok {
					genOpen = false
				} else {
					admit = append(admit, r)
				}
			default:
				break genTop
			}
		}
	clsTop:
		for clsOpen && len(cls) < s.cfg.MaxBatch {
			select {
			case r, ok := <-s.in:
				if !ok {
					clsOpen = false
				} else {
					cls = append(cls, r)
				}
			default:
				break clsTop
			}
		}

		finished = finished[:0]
		s.execMu.RLock()
		level := s.eng.Level()
		if len(cls) > 0 {
			s.classifyBatch(replica, level, cls, &clsIDs)
		}
		if len(admit) > 0 {
			slots = append(slots, s.admitGen(replica, level, admit, &free, &finished)...)
		}
		if len(slots) > 0 {
			// partition: speculating slots that are caught up take a
			// draft/verify round; everything else (plain slots, and
			// speculating slots still replaying a resumed prefix) takes
			// one plain fused step
			plain, specs = plain[:0], specs[:0]
			for _, sl := range slots {
				if sl.seq != nil && sl.feed == len(sl.tokens)-1 {
					specs = append(specs, sl)
				} else {
					plain = append(plain, sl)
				}
			}
			slots = slots[:0]
			if len(plain) > 0 {
				tokens = tokens[:0]
				states = states[:0]
				for _, sl := range plain {
					tokens = append(tokens, sl.tokens[sl.feed])
					states = append(states, sl.st)
				}
				t0 := time.Now()
				logits, err := s.eng.DecodeBatch(replica, states, tokens)
				s.simDVFSDelay(level, t0)
				stepDur := time.Since(t0)
				stepMS := float64(stepDur.Microseconds()) / 1000
				for i, sl := range plain {
					if s.tracer.SampleStep(sl.steps) {
						sl.req.tr.Add("decode_step", t0, stepDur,
							"step", float64(sl.steps), "batch", float64(len(plain)))
					}
					sl.steps++
					sl.decodeMS += stepMS
					if err != nil {
						free = append(free, sl.st)
						if sl.draft != nil {
							free = append(free, sl.draft)
						}
						s.tracer.Abort(sl.req.tr)
						sl.req.resp <- GenResponse{Err: err}
						continue
					}
					if sl.feed == len(sl.tokens)-1 {
						sl.tokens = append(sl.tokens, logits.ArgmaxRow(i))
					}
					sl.feed++
					if sl.done() {
						finished = append(finished, sl)
					} else {
						slots = append(slots, sl)
					}
				}
			}
			if len(specs) > 0 {
				slots = append(slots, s.stepSpec(replica, level, specs, &finished)...)
			}
		}
		s.execMu.RUnlock()

		for _, sl := range finished {
			free = append(free, sl.st)
			if sl.draft != nil {
				free = append(free, sl.draft)
			}
			s.finishGen(sl, level)
		}
	}
}

// takeState pops a recycled DecodeState off the worker's free-list or
// builds a fresh one.
func (s *Server) takeState(replica int, free *[]*transformer.DecodeState) (*transformer.DecodeState, error) {
	if n := len(*free); n > 0 {
		st := (*free)[n-1]
		*free = (*free)[:n-1]
		return st, nil
	}
	return s.eng.NewDecodeState(replica)
}

// finishGen delivers one completed generation, records its latency
// split, and charges the modeled energy of its generated tokens.
func (s *Server) finishGen(sl *genSlot, level int) {
	resp := GenResponse{
		Tokens:     sl.tokens,
		Level:      level,
		Steps:      sl.steps,
		CachedRows: sl.cachedRows,
		QueueMS:    sl.queueMS,
		PrefillMS:  sl.prefillMS,
		DecodeMS:   sl.decodeMS,
		TotalMS:    float64(time.Since(sl.req.enq).Microseconds()) / 1000,
	}
	if sl.seq != nil {
		resp.SpecRounds = sl.seq.Rounds
		resp.SpecDrafted = sl.seq.Drafted
		resp.SpecAccepted = sl.seq.Accepted
	}
	sl.req.resp <- resp
	sl.req.tr.Add("finish", time.Now(), 0,
		"tokens", float64(len(sl.tokens)), "steps", float64(sl.steps))
	s.tracer.Finish(sl.req.tr)
	s.rec.Observe(level, sl.queueMS, sl.prefillMS+sl.decodeMS)
	s.rec.ObserveTokens(len(sl.tokens))
	s.drainEnergy(level, len(sl.tokens))
}
