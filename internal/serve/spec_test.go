package serve_test

import (
	"testing"

	"rt3/internal/kernel"
	"rt3/internal/mat"
	"rt3/internal/serve"
	"rt3/internal/spec"
	"rt3/internal/transformer"
)

// specRagged builds a ragged prompt batch (distinct lengths) so fused
// admission, draft prefill, and verify chunks all see uneven rows.
func specRagged(seed int64) [][]int {
	return [][]int{
		randSeqs(1, 7, lmCfg.Vocab, seed)[0],
		randSeqs(1, 1, lmCfg.Vocab, seed+1)[0],
		randSeqs(1, 9, lmCfg.Vocab, seed+2)[0],
		randSeqs(1, 4, lmCfg.Vocab, seed+3)[0],
	}
}

// TestGenerateSpecBitIdenticalFormatsLevels is the serving half of the
// speculative bit-identity suite: for every registry kernel format and
// every deployed pruning level, a speculating server's output over a
// ragged batch must equal the plain single-sequence cached loop
// token-for-token. The last level doubles as the draft level, so one
// arm also covers draft==target (legal, pointless, still identical).
func TestGenerateSpecBitIdenticalFormatsLevels(t *testing.T) {
	budgets := []int{6, 3, 8, 5}
	for _, format := range kernel.Formats() {
		format := format
		t.Run(format, func(t *testing.T) {
			eng, _ := newLMDeployment(t, 1, format)
			refEng, _ := newLMDeployment(t, 1, format)
			srv := serve.New(eng, serve.Config{
				Generate: true, MaxBatch: 4, QueueCap: 64,
				Spec: &serve.SpecConfig{DraftLevel: -1, K: 3, Auto: true},
			})
			srv.Start()
			defer srv.Stop()

			prompts := specRagged(101)
			for lvl := 0; lvl < eng.NumLevels(); lvl++ {
				if _, err := srv.SwitchTo(lvl); err != nil {
					t.Fatal(err)
				}
				if _, err := refEng.SwitchTo(lvl); err != nil {
					t.Fatal(err)
				}
				chans := make([]<-chan serve.GenResponse, len(prompts))
				for i := range prompts {
					ch, err := srv.SubmitGen(prompts[i], budgets[i], -1)
					if err != nil {
						t.Fatal(err)
					}
					chans[i] = ch
				}
				for i, ch := range chans {
					resp := <-ch
					if resp.Err != nil {
						t.Fatalf("level %d request %d: %v", lvl, i, resp.Err)
					}
					if len(resp.Tokens) != budgets[i] {
						t.Fatalf("level %d request %d: %d tokens, want %d", lvl, i, len(resp.Tokens), budgets[i])
					}
					_, want := decodeCached(t, refEng, 0, [][]int{prompts[i]}, budgets[i])
					for j, tok := range resp.Tokens {
						if tok != want[0][j] {
							t.Fatalf("level %d request %d token %d: speculative %d, plain %d",
								lvl, i, j, tok, want[0][j])
						}
					}
					// dense ground truth on top of the cached-loop reference
					// (exact-arithmetic formats only: f32/int8 argmax may
					// legitimately flip near-tied logits vs masked dense)
					if format != "f32" && format != "int8" {
						dense, err := srv.DenseGenReference(lvl, prompts[i], budgets[i], -1)
						if err != nil {
							t.Fatal(err)
						}
						for j, tok := range resp.Tokens {
							if tok != dense[j] {
								t.Fatalf("level %d request %d token %d: speculative %d, dense %d",
									lvl, i, j, tok, dense[j])
							}
						}
					}
					if resp.SpecRounds == 0 {
						t.Fatalf("level %d request %d: rode zero speculative rounds", lvl, i)
					}
					if resp.SpecAccepted > resp.SpecDrafted {
						t.Fatalf("level %d request %d: accepted %d > drafted %d",
							lvl, i, resp.SpecAccepted, resp.SpecDrafted)
					}
				}
			}
			rounds, drafted, accepted, committed := srv.SpecStats()
			if rounds == 0 || drafted == 0 || committed == 0 {
				t.Fatalf("spec counters flat: rounds=%d drafted=%d accepted=%d committed=%d",
					rounds, drafted, accepted, committed)
			}
		})
	}
}

// TestGenerateSpecMixedBatch drives speculating and plain requests
// through the same continuous-batching worker (Auto off, per-request
// opt-in): the step loop partitions them every iteration, and both
// classes must match the plain reference.
func TestGenerateSpecMixedBatch(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	refEng, _ := newLMDeployment(t, 1, "pattern")
	srv := serve.New(eng, serve.Config{
		Generate: true, MaxBatch: 6, QueueCap: 64,
		Spec: &serve.SpecConfig{DraftLevel: -1, K: 2},
	})
	srv.Start()
	defer srv.Stop()

	prompts := specRagged(211)
	const budget = 7
	chans := make([]<-chan serve.GenResponse, len(prompts))
	for i := range prompts {
		var ch <-chan serve.GenResponse
		var err error
		if i%2 == 0 {
			ch, err = srv.SubmitGenOpts(prompts[i], serve.GenOpts{Speculate: true, MaxTokens: budget, EOS: -1})
		} else {
			ch, err = srv.SubmitGen(prompts[i], budget, -1)
		}
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
		_, want := decodeCached(t, refEng, 0, [][]int{prompts[i]}, budget)
		for j, tok := range resp.Tokens {
			if tok != want[0][j] {
				t.Fatalf("request %d token %d: got %d, want %d", i, j, tok, want[0][j])
			}
		}
		if i%2 == 0 && resp.SpecRounds == 0 {
			t.Fatalf("speculating request %d rode zero rounds", i)
		}
		if i%2 == 1 && (resp.SpecRounds != 0 || resp.SpecDrafted != 0) {
			t.Fatalf("plain request %d reports spec stats %d/%d", i, resp.SpecRounds, resp.SpecDrafted)
		}
	}
}

// TestGenerateSpecSplitPrefixCache runs split (shared-system-prompt)
// requests through the speculating server with the radix prefix cache
// on: every response must match the masked dense split reference, the
// first wave populates the cache, and the second wave — same prefix,
// fresh suffixes — must report cached rows and radix hits.
func TestGenerateSpecSplitPrefixCache(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	srv := serve.New(eng, serve.Config{
		Generate: true, MaxBatch: 4, QueueCap: 64,
		Spec:            &serve.SpecConfig{DraftLevel: -1, K: 2, Auto: true},
		PrefixCacheRows: -1,
	})
	srv.Start()
	defer srv.Stop()

	prefix := randSeqs(1, 5, lmCfg.Vocab, 307)[0]
	suffixes := [][]int{
		randSeqs(1, 3, lmCfg.Vocab, 311)[0],
		randSeqs(1, 6, lmCfg.Vocab, 313)[0],
		randSeqs(1, 4, lmCfg.Vocab, 317)[0],
	}
	const budget = 6
	level := eng.Level()

	run := func(suffix []int) serve.GenResponse {
		t.Helper()
		prompt := append(append([]int(nil), prefix...), suffix...)
		ch, err := srv.SubmitGenOpts(prompt, serve.GenOpts{
			SplitAt: len(prefix), MaxTokens: budget, EOS: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		resp := <-ch
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		want, err := srv.DenseGenReferenceSplit(level, prefix, suffix, budget, -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Tokens) != len(want) {
			t.Fatalf("split response %d tokens, want %d", len(resp.Tokens), len(want))
		}
		for j, tok := range resp.Tokens {
			if tok != want[j] {
				t.Fatalf("split token %d: got %d, dense split reference %d", j, tok, want[j])
			}
		}
		return resp
	}

	// wave 1: populates the radix tree (each waits, so inserts land
	// before the next lookup)
	if resp := run(suffixes[0]); resp.CachedRows != 0 {
		t.Fatalf("cold split request reports %d cached rows", resp.CachedRows)
	}
	// wave 2: same prefix, fresh suffixes — prefix rows must come from
	// the cache
	for i, suffix := range suffixes[1:] {
		resp := run(suffix)
		if resp.CachedRows < len(prefix) {
			t.Fatalf("warm split request %d: %d cached rows, want >= prefix %d",
				i, resp.CachedRows, len(prefix))
		}
		if resp.SpecRounds == 0 {
			t.Fatalf("warm split request %d rode zero speculative rounds", i)
		}
	}
	// an exact repeat shares the suffix too (capped one row short: the
	// last suffix row is always computed live)
	resp := run(suffixes[0])
	wantRows := len(prefix) + len(suffixes[0]) - 1
	if resp.CachedRows != wantRows {
		t.Fatalf("repeat split request: %d cached rows, want %d", resp.CachedRows, wantRows)
	}

	st, ok := srv.PrefixCacheStats()
	if !ok {
		t.Fatal("prefix cache configured but stats report disabled")
	}
	if st.Hits == 0 || st.HitRows == 0 || st.Inserts == 0 {
		t.Fatalf("radix counters flat: %+v", st)
	}
}

// TestGenerateSpecResume covers the failover path with speculation on:
// a resumed request replays its committed prefix through plain fused
// steps, then picks speculation back up — and the full stream must
// equal the uninterrupted speculative run, which itself equals the
// uninterrupted plain run.
func TestGenerateSpecResume(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	plainEng, _ := newLMDeployment(t, 1, "pattern")
	srv := serve.New(eng, serve.Config{
		Generate: true, MaxBatch: 4, QueueCap: 16,
		Spec: &serve.SpecConfig{DraftLevel: -1, K: 3, Auto: true},
	})
	plainSrv := serve.New(plainEng, serve.Config{Generate: true, MaxBatch: 4, QueueCap: 16})
	srv.Start()
	plainSrv.Start()
	defer srv.Stop()
	defer plainSrv.Stop()

	prompt := randSeqs(1, 6, lmCfg.Vocab, 401)[0]
	const budget = 10
	ch, err := srv.SubmitGen(prompt, budget, -1)
	if err != nil {
		t.Fatal(err)
	}
	full := <-ch
	if full.Err != nil {
		t.Fatal(full.Err)
	}
	if len(full.Tokens) != budget {
		t.Fatalf("full run: %d tokens, want %d", len(full.Tokens), budget)
	}

	for _, cut := range []int{1, 4, budget - 1} {
		// resume on the speculating server
		ch, err := srv.SubmitGenOpts(prompt, serve.GenOpts{
			Prefix: full.Tokens[:cut], Speculate: true, MaxTokens: budget, EOS: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("cut %d: %v", cut, resp.Err)
		}
		if len(resp.Tokens) != budget {
			t.Fatalf("cut %d: resumed run has %d tokens, want %d", cut, len(resp.Tokens), budget)
		}
		for j, tok := range resp.Tokens {
			if tok != full.Tokens[j] {
				t.Fatalf("cut %d token %d: resumed %d, uninterrupted %d", cut, j, tok, full.Tokens[j])
			}
		}
		// the same prefix resumed on a plain server (spec-on crash,
		// spec-off failover target) must also agree
		ch, err = plainSrv.SubmitGenResume(prompt, full.Tokens[:cut], budget, -1)
		if err != nil {
			t.Fatal(err)
		}
		resp = <-ch
		if resp.Err != nil {
			t.Fatalf("cut %d plain resume: %v", cut, resp.Err)
		}
		for j, tok := range resp.Tokens {
			if tok != full.Tokens[j] {
				t.Fatalf("cut %d token %d: plain resume %d, speculative %d", cut, j, tok, full.Tokens[j])
			}
		}
	}
}

// engExec adapts an engine replica to spec.Model for deterministic
// engine-level rounds (the serve worker's specExec, minus the server).
type engExec struct {
	t       *testing.T
	eng     *serve.Engine
	replica int
}

func (x engExec) DecodeStep(states []*transformer.DecodeState, tokens []int) *mat.Matrix {
	logits, err := x.eng.DecodeBatch(x.replica, states, tokens)
	if err != nil {
		x.t.Fatal(err)
	}
	return logits
}

func (x engExec) DecodeChunk(states []*transformer.DecodeState, chunks [][]int) []*mat.Matrix {
	outs, err := x.eng.DecodeChunkBatch(x.replica, states, chunks)
	if err != nil {
		x.t.Fatal(err)
	}
	return outs
}

// TestSpecRoundMidSwitchBitIdentical pins speculation under
// mid-generation level switches, deterministically: the engine switches
// levels between draft/verify rounds (the autotuner's step-boundary
// semantics), the sequence keeps its KV cache across switches, and the
// committed stream must equal a plain cached replay that applies the
// identical per-token level schedule. Each committed token's KV row is
// written by the round that committed its successor, so the replay
// feeds token j at the level of the round that committed token j+1.
func TestSpecRoundMidSwitchBitIdentical(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	exec := engExec{t: t, eng: eng, replica: 0}
	draftLevel := eng.NumLevels() - 1
	const maxTokens = 14
	prompt := randSeqs(1, 6, lmCfg.Vocab, 83)[0]
	schedule := []int{0, 1, 2, 0, 1}

	if _, err := eng.SwitchTo(schedule[0]); err != nil {
		t.Fatal(err)
	}
	target, err := eng.NewDecodeState(0)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := eng.PrefillBatch(0, []*transformer.DecodeState{target}, [][]int{prompt})
	if err != nil {
		t.Fatal(err)
	}
	first := outs[0].ArgmaxRow(outs[0].Rows - 1)

	draft, err := eng.NewDecodeState(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.InstallReplicaLevel(0, draftLevel); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.PrefillBatch(0, []*transformer.DecodeState{draft}, [][]int{prompt}); err != nil {
		t.Fatal(err)
	}
	if err := eng.InstallReplicaLevel(0, schedule[0]); err != nil {
		t.Fatal(err)
	}

	seq := &spec.Seq{
		Target: target, Draft: draft,
		Tokens: []int{first}, Base: len(prompt),
		EOS: -1, Max: maxTokens,
	}
	tokLevels := []int{schedule[0]}
	for r := 0; !seq.Done; r++ {
		lvl := schedule[r%len(schedule)]
		if _, err := eng.SwitchTo(lvl); err != nil {
			t.Fatal(err)
		}
		opts := spec.Options{
			K: 3,
			BeginDraft: func() {
				if err := eng.InstallReplicaLevel(0, draftLevel); err != nil {
					t.Fatal(err)
				}
			},
			EndDraft: func() {
				if err := eng.InstallReplicaLevel(0, lvl); err != nil {
					t.Fatal(err)
				}
			},
		}
		prev := len(seq.Tokens)
		spec.Round(exec, exec, []*spec.Seq{seq}, opts)
		for i := prev; i < len(seq.Tokens); i++ {
			tokLevels = append(tokLevels, lvl)
		}
	}
	if len(seq.Tokens) != maxTokens {
		t.Fatalf("speculative run committed %d tokens, want %d", len(seq.Tokens), maxTokens)
	}
	switched := false
	for i := 1; i < len(tokLevels); i++ {
		if tokLevels[i] != tokLevels[0] {
			switched = true
		}
	}
	if !switched {
		t.Fatal("schedule never switched levels mid-generation")
	}

	// plain cached replay with the identical per-token level schedule
	if _, err := eng.SwitchTo(tokLevels[0]); err != nil {
		t.Fatal(err)
	}
	ref, err := eng.NewDecodeState(0)
	if err != nil {
		t.Fatal(err)
	}
	pouts, err := eng.PrefillBatch(0, []*transformer.DecodeState{ref}, [][]int{prompt})
	if err != nil {
		t.Fatal(err)
	}
	if got := pouts[0].ArgmaxRow(pouts[0].Rows - 1); got != seq.Tokens[0] {
		t.Fatalf("replay token 0: got %d, speculative %d", got, seq.Tokens[0])
	}
	for i := 1; i < len(seq.Tokens); i++ {
		if _, err := eng.SwitchTo(tokLevels[i]); err != nil {
			t.Fatal(err)
		}
		logits, err := eng.DecodeBatch(0, []*transformer.DecodeState{ref}, []int{seq.Tokens[i-1]})
		if err != nil {
			t.Fatal(err)
		}
		if got := logits.ArgmaxRow(0); got != seq.Tokens[i] {
			t.Fatalf("replay token %d (level %d): got %d, speculative %d",
				i, tokLevels[i], got, seq.Tokens[i])
		}
	}
}
