package serve

import (
	"time"

	"rt3/internal/mat"
	"rt3/internal/spec"
	"rt3/internal/transformer"
)

// SpecConfig tunes self-speculative decoding: the serving-side use of
// the paper's multi-level weight set where one replica drafts ahead of
// itself at a cheap high-sparsity level and verifies at the active
// level in one fused chunk. Output is bit-identical to plain decoding
// by construction (see internal/spec); the draft level only changes
// how many target-level passes each round replaces.
type SpecConfig struct {
	// DraftLevel indexes the bundle level whose kernels draft (< 0: the
	// last level — by the fastest-first convention the sparsest, cheapest
	// one). Drafting at the active level itself is legal but pointless.
	DraftLevel int
	// K is the draft length per round (<= 0: 3). Each round then runs K
	// cheap draft steps plus one fused K+1-row target verification in
	// place of up to K+1 sequential target steps.
	K int
	// Auto applies speculation to every generation request; otherwise
	// only requests submitted with GenOpts.Speculate ride it.
	Auto bool
}

func (c SpecConfig) withDefaults(numLevels int) SpecConfig {
	if c.DraftLevel < 0 {
		c.DraftLevel = numLevels - 1
	}
	if c.K <= 0 {
		c.K = 3
	}
	return c
}

// GenOpts are per-request generation options beyond SubmitGen's.
type GenOpts struct {
	// Prefix resumes from already-committed tokens (see SubmitGenResume).
	Prefix []int
	// SplitAt, when > 0, declares prompt[:SplitAt] a shared prefix (e.g.
	// a system prompt): the frozen cross-attention memory is the encoder
	// over the prefix alone and the suffix is teacher-forced through the
	// decoder — the split semantics under which decoder K/V rows are
	// prefix-stable and shareable through the radix prefix cache. Split
	// and whole-prompt requests condition on different memories, so their
	// references are DenseGenReferenceSplit and DenseGenReference
	// respectively. 0 keeps whole-prompt semantics.
	SplitAt int
	// Speculate opts this request into self-speculative decoding
	// (requires Config.Spec; implied by SpecConfig.Auto).
	Speculate bool
	// MaxTokens <= 0 picks Config.MaxGenTokens; EOS < 0 disables EOS.
	MaxTokens, EOS int
}

// SubmitGenOpts admits one generation request with per-request options
// — prefix-cache-eligible split prompts, speculation opt-in, resume —
// and returns its response channel (buffered; exactly one send). See
// SubmitGen for the base semantics and error cases.
func (s *Server) SubmitGenOpts(prompt []int, o GenOpts) (<-chan GenResponse, error) {
	if !s.cfg.Generate {
		return nil, ErrNotGenerating
	}
	if len(prompt) == 0 {
		return nil, ErrEmptyRequest
	}
	if o.SplitAt < 0 || o.SplitAt >= len(prompt) {
		if o.SplitAt != 0 {
			return nil, ErrBadSplit
		}
	}
	if o.Speculate && s.cfg.Spec == nil {
		return nil, ErrNoSpec
	}
	maxTokens := o.MaxTokens
	if maxTokens <= 0 {
		maxTokens = s.cfg.MaxGenTokens
	}
	eos := o.EOS
	if eos < 0 {
		eos = -1
	}
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	if s.stopped {
		return nil, ErrStopped
	}
	if n := len(o.Prefix); n > 0 && (n >= maxTokens || o.Prefix[n-1] == eos) {
		resp := make(chan GenResponse, 1)
		resp <- GenResponse{
			Tokens: append([]int(nil), o.Prefix...),
			Level:  s.eng.Level(),
		}
		return resp, nil
	}
	r := &genReq{
		prompt:    prompt,
		prefix:    o.Prefix,
		memLen:    o.SplitAt,
		spec:      s.cfg.Spec != nil && (o.Speculate || s.cfg.Spec.Auto),
		maxTokens: maxTokens,
		eos:       eos,
		enq:       time.Now(),
		resp:      make(chan GenResponse, 1),
	}
	r.tr = s.tracer.StartAt("generate", r.enq)
	select {
	case s.genIn <- r:
		return r.resp, nil
	default:
		s.tracer.Abort(r.tr)
		s.rec.ObserveDrop()
		return nil, ErrQueueFull
	}
}

// specExec adapts one worker's replica to the spec.Model surface,
// routing through the engine so kernels, counters, and cache
// accounting all see speculative traffic. Engine errors are
// impossible here — Generate mode validated the decode surface at
// construction — so they panic instead of being threaded through the
// speculation loop.
type specExec struct {
	s       *Server
	replica int
}

func (x specExec) DecodeStep(states []*transformer.DecodeState, tokens []int) *mat.Matrix {
	logits, err := x.s.eng.DecodeBatch(x.replica, states, tokens)
	if err != nil {
		panic("serve: speculative decode step on non-decoding replica: " + err.Error())
	}
	return logits
}

func (x specExec) DecodeChunk(states []*transformer.DecodeState, chunks [][]int) []*mat.Matrix {
	outs, err := x.s.eng.DecodeChunkBatch(x.replica, states, chunks)
	if err != nil {
		panic("serve: speculative verify chunk on non-decoding replica: " + err.Error())
	}
	return outs
}

// specOptions builds the per-round options for a worker: the draft
// bracket installs the draft level's kernels on the worker's own
// replica and restores the active level's afterwards — legal under the
// execution read lock the worker already holds (a live switch takes
// the write lock, so it can never interleave with a round).
func (s *Server) specOptions(replica, level int) spec.Options {
	o := spec.Options{K: s.cfg.Spec.K}
	if draft := s.cfg.Spec.DraftLevel; draft != level {
		o.BeginDraft = func() { _ = s.eng.InstallReplicaLevel(replica, draft) }
		o.EndDraft = func() { _ = s.eng.InstallReplicaLevel(replica, level) }
	}
	return o
}

// admitGen admits a batch of generation requests into fresh decode
// slots: one fused prefill over whole prompts (classic requests) and
// uncached prefixes (split requests), one fused chunk teacher-forcing
// every split request's uncovered suffix, prefix-cache lookups and
// inserts at the active level, and — for speculating requests — draft
// states prefilled the same way at the draft level inside the kernel
// bracket. Called with execMu read-held; returns the started slots
// (finished ones — resumed prefixes already terminal — are delivered
// by the caller via the finished list).
func (s *Server) admitGen(replica, level int, admit []*genReq, free *[]*transformer.DecodeState, finished *[]*genSlot) []*genSlot {
	type adm struct {
		r          *genReq
		st         *transformer.DecodeState
		draft      *transformer.DecodeState
		tail       []int // uncovered suffix rows to teacher-force (split only)
		cachedRows int
		first      int // first generated token (argmax of the admitting pass)
		needsPre   bool
		preIdx     int // row in the fused prefill batch
		tailIdx    int // row in the fused chunk batch
	}
	specK := 0
	if s.cfg.Spec != nil {
		specK = s.cfg.Spec.K
	}

	dispatch := time.Now()
	adms := make([]*adm, 0, len(admit))
	for _, r := range admit {
		st, err := s.takeState(replica, free)
		if err != nil {
			s.tracer.Abort(r.tr)
			r.resp <- GenResponse{Err: err}
			continue
		}
		st.Reserve(len(r.prompt) + r.maxTokens + specK + 1)
		a := &adm{r: r, st: st, needsPre: true, preIdx: -1, tailIdx: -1}
		if r.memLen > 0 {
			prefix := r.prompt[:r.memLen]
			suffix := r.prompt[r.memLen:]
			a.tail = suffix
			if s.prefixCache != nil {
				// cap the match one token short: the last suffix row is
				// always computed live so the chunk yields the first
				// generated token's logits
				if h := s.prefixCache.Match(level, prefix, suffix[:len(suffix)-1]); h != nil {
					h.Load(st)
					a.cachedRows = h.Rows()
					a.tail = suffix[h.Matched():]
					a.needsPre = false
					h.Release()
				}
			}
		}
		adms = append(adms, a)
	}
	if len(adms) == 0 {
		return nil
	}

	// phase 1: one fused prefill over whole prompts and uncached prefixes
	var pstates []*transformer.DecodeState
	var pprompts [][]int
	rows := 0
	for _, a := range adms {
		if !a.needsPre {
			continue
		}
		p := a.r.prompt
		if a.r.memLen > 0 {
			p = p[:a.r.memLen]
		}
		a.preIdx = len(pstates)
		pstates = append(pstates, a.st)
		pprompts = append(pprompts, p)
		rows += len(p)
	}
	var err error
	if len(pstates) > 0 {
		// the logits are a view into the replica's activation buffers,
		// valid only until its next forward — harvest whole-prompt first
		// tokens before the later phases run more passes
		var pouts []*mat.Matrix
		if pouts, err = s.eng.PrefillBatch(replica, pstates, pprompts); err == nil {
			for _, a := range adms {
				if a.preIdx >= 0 && a.r.memLen == 0 {
					out := pouts[a.preIdx]
					a.first = out.ArgmaxRow(out.Rows - 1)
				}
			}
		}
	}

	// phase 2: one fused chunk teacher-forcing every split request's
	// uncovered suffix against its frozen prefix memory
	var cstates []*transformer.DecodeState
	var cchunks [][]int
	for _, a := range adms {
		if a.r.memLen == 0 || err != nil {
			continue
		}
		a.tailIdx = len(cstates)
		cstates = append(cstates, a.st)
		cchunks = append(cchunks, a.tail)
		rows += len(a.tail)
	}
	if err == nil && len(cstates) > 0 {
		var couts []*mat.Matrix
		if couts, err = s.eng.DecodeChunkBatch(replica, cstates, cchunks); err == nil {
			// same view lifetime: split first tokens come off the chunk
			// logits before the draft phase reuses the buffers
			for _, a := range adms {
				if a.tailIdx >= 0 {
					out := couts[a.tailIdx]
					a.first = out.ArgmaxRow(out.Rows - 1)
				}
			}
			if s.prefixCache != nil {
				for _, a := range adms {
					if a.r.memLen > 0 {
						s.prefixCache.Insert(level, a.r.prompt[:a.r.memLen], a.r.prompt[a.r.memLen:], a.st)
					}
				}
			}
		}
	}

	// phase 3: draft states for speculating requests, prefilled at the
	// draft level inside the kernel bracket (split requests keep split
	// semantics at the draft level too; the cache only serves the target
	// level)
	if err == nil && s.cfg.Spec != nil {
		var dadms []*adm
		for _, a := range adms {
			if a.r.spec {
				dadms = append(dadms, a)
			}
		}
		if len(dadms) > 0 {
			for _, a := range dadms {
				if a.draft, err = s.takeState(replica, free); err != nil {
					break
				}
				a.draft.Reserve(len(a.r.prompt) + a.r.maxTokens + specK + 1)
			}
			if err == nil {
				draftLevel := s.cfg.Spec.DraftLevel
				if draftLevel != level {
					_ = s.eng.InstallReplicaLevel(replica, draftLevel)
				}
				var dstates []*transformer.DecodeState
				var dprompts [][]int
				for _, a := range dadms {
					p := a.r.prompt
					if a.r.memLen > 0 {
						p = p[:a.r.memLen]
					}
					dstates = append(dstates, a.draft)
					dprompts = append(dprompts, p)
				}
				_, err = s.eng.PrefillBatch(replica, dstates, dprompts)
				if err == nil {
					dstates = dstates[:0]
					var dchunks [][]int
					for _, a := range dadms {
						if a.r.memLen > 0 {
							dstates = append(dstates, a.draft)
							dchunks = append(dchunks, a.r.prompt[a.r.memLen:])
						}
					}
					if len(dstates) > 0 {
						_, err = s.eng.DecodeChunkBatch(replica, dstates, dchunks)
					}
				}
				if draftLevel != level {
					_ = s.eng.InstallReplicaLevel(replica, level)
				}
			}
		}
	}

	s.simDVFSDelay(level, dispatch)
	prefillDur := time.Since(dispatch)
	prefillMS := float64(prefillDur.Microseconds()) / 1000
	s.rec.ObserveBatch(len(adms), s.cfg.MaxBatch)

	var started []*genSlot
	for _, a := range adms {
		r := a.r
		if err != nil {
			*free = append(*free, a.st)
			if a.draft != nil {
				*free = append(*free, a.draft)
			}
			s.tracer.Abort(r.tr)
			r.resp <- GenResponse{Err: err}
			continue
		}
		r.tr.Add("queue", r.enq, dispatch.Sub(r.enq), "batch", float64(len(adms)), "", 0)
		r.tr.Add("prefill", dispatch, prefillDur, "rows", float64(rows), "level", float64(level))
		sl := &genSlot{
			req: r, st: a.st, draft: a.draft,
			cachedRows: a.cachedRows,
			queueMS:    float64(dispatch.Sub(r.enq).Microseconds()) / 1000,
			prefillMS:  prefillMS,
		}
		if len(r.prefix) > 0 {
			sl.tokens = append(sl.tokens, r.prefix...)
		} else {
			sl.tokens = append(sl.tokens, a.first)
		}
		if r.spec {
			sl.seq = &spec.Seq{
				Target: a.st, Draft: a.draft,
				Base: len(r.prompt),
				EOS:  r.eos, Max: r.maxTokens,
			}
		}
		if sl.done() {
			*finished = append(*finished, sl)
		} else {
			started = append(started, sl)
		}
	}
	return started
}

// stepSpec advances caught-up speculating slots by one draft/verify
// round: K draft-level steps (kernel bracket) plus one fused target
// chunk over all K+1 positions per sequence, committing the longest
// accepted prefix plus the target's own next token — one to K+1 tokens
// per slot per round, bit-identical to the plain loop. Called with
// execMu read-held; appends finished slots and returns the survivors.
func (s *Server) stepSpec(replica, level int, sls []*genSlot, finished *[]*genSlot) []*genSlot {
	seqs := make([]*spec.Seq, len(sls))
	for i, sl := range sls {
		sl.seq.Tokens = sl.tokens
		seqs[i] = sl.seq
	}
	exec := specExec{s: s, replica: replica}
	t0 := time.Now()
	st := spec.Round(exec, exec, seqs, s.specOptions(replica, level))
	s.simDVFSDelay(level, t0)
	roundDur := time.Since(t0)
	roundMS := float64(roundDur.Microseconds()) / 1000

	s.specRounds.Add(1)
	s.specDrafted.Add(int64(st.Drafted))
	s.specAccepted.Add(int64(st.Accepted))
	s.specCommitted.Add(int64(st.Committed))

	alive := sls[:0]
	for i, sl := range sls {
		if s.tracer.SampleStep(sl.steps) {
			sl.req.tr.Add("spec_round", t0, roundDur,
				"drafted", float64(st.Drafted), "accepted", float64(st.Accepted))
		}
		sl.tokens = seqs[i].Tokens
		sl.feed = len(sl.tokens) - 1
		sl.steps++ // the verify chunk is the slot's fused target pass
		sl.decodeMS += roundMS
		if seqs[i].Done {
			*finished = append(*finished, sl)
		} else {
			alive = append(alive, sl)
		}
	}
	return alive
}

// SpecStats snapshots the server-wide speculation counters: rounds,
// drafted, accepted, committed.
func (s *Server) SpecStats() (rounds, drafted, accepted, committed int64) {
	return s.specRounds.Load(), s.specDrafted.Load(), s.specAccepted.Load(), s.specCommitted.Load()
}

// PrefixCacheStats snapshots the radix prefix cache counters; ok is
// false when the cache is disabled.
func (s *Server) PrefixCacheStats() (st spec.RadixStats, ok bool) {
	if s.prefixCache == nil {
		return spec.RadixStats{}, false
	}
	return s.prefixCache.Stats(), true
}

// DenseGenReferenceSplit greedily decodes the masked dense reference
// for a split request at level idx on the quiesced engine — the ground
// truth a split (prefix-cached or speculative) generation must match
// token-for-token. maxTokens <= 0 picks Config.MaxGenTokens.
func (s *Server) DenseGenReferenceSplit(idx int, prefix, suffix []int, maxTokens, eos int) ([]int, error) {
	if maxTokens <= 0 {
		maxTokens = s.cfg.MaxGenTokens
	}
	s.execMu.Lock()
	defer s.execMu.Unlock()
	return s.eng.DenseGenerateSplit(idx, prefix, suffix, maxTokens, eos)
}

// SpecEnabled reports whether self-speculative decoding is configured,
// and the resolved draft level and K when it is.
func (s *Server) SpecEnabled() (draftLevel, k int, ok bool) {
	if s.cfg.Spec == nil {
		return 0, 0, false
	}
	return s.cfg.Spec.DraftLevel, s.cfg.Spec.K, true
}
