package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"rt3/internal/obs"
	"rt3/internal/serve"
	"rt3/internal/transformer"
)

// TestRecorderFacadeConcurrent hammers the Recorder façade and its
// backing registry from 8 goroutines mixing observations, snapshots and
// resets — the contract the admin scraper relies on while workers are
// recording (run under -race).
func TestRecorderFacadeConcurrent(t *testing.T) {
	rec := serve.NewRecorder(levelNames)
	reg := rec.Metrics()
	const (
		workers = 8
		iters   = 200
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 8 {
				case 0:
					rec.Observe(i%len(levelNames), float64(i%7), float64(i%5))
				case 1:
					rec.ObserveBatch(1+i%8, 8)
				case 2:
					rec.ObserveSwitch(float64(i%3), float64(i%4))
					rec.ObserveDrop()
					rec.ObserveTokens(i % 9)
				case 3:
					rec.Snapshot()
					rec.Overall()
				case 4:
					rec.RecentStats()
					rec.RecentP95()
				case 5:
					rec.Counters()
					rec.MeanBatch()
					rec.FillRatio()
				case 6:
					reg.Snapshot()
					var buf bytes.Buffer
					if err := reg.WritePrometheus(&buf); err != nil {
						t.Error(err)
						return
					}
				case 7:
					reg.Reset()
				}
			}
		}()
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("post-stress exposition invalid: %v\n%s", err, buf.String())
	}
}

// TestServerMetricsExposition drives the classification server through
// requests and a live switch, then asserts the registry renders valid
// Prometheus text containing the series the CI smoke job greps for.
func TestServerMetricsExposition(t *testing.T) {
	eng, _ := newTestDeployment(t, 2)
	srv := serve.New(eng, serve.Config{MaxBatch: 4, MaxDelay: time.Millisecond, QueueCap: 64})
	srv.Start()
	seqs := randSeqs(12, 10, 24, 71)
	var chans []<-chan serve.Response
	for _, ids := range seqs[:6] {
		ch, err := srv.Submit(ids)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		if resp := <-ch; resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	if _, err := srv.SwitchTo(1); err != nil {
		t.Fatal(err)
	}
	chans = chans[:0]
	for _, ids := range seqs[6:] {
		ch, err := srv.Submit(ids)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		if resp := <-ch; resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	srv.Stop()

	var buf bytes.Buffer
	if err := srv.Metrics().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := obs.ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, text)
	}
	for _, series := range []string{
		"rt3_requests_total",
		"rt3_decode_steps_total",
		"rt3_switch_stall_ms",
		"rt3_switches_total",
		"rt3_batches_total",
		"rt3_level",
		"rt3_queue_depth",
		"rt3_traces_finished_total",
		"rt3_kernel_builds_total",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("exposition missing %s:\n%s", series, text)
		}
	}
	snap := srv.Metrics().Snapshot()
	var completed float64
	for _, name := range levelNames {
		completed += snap[`rt3_requests_total{level="`+name+`"}`]
	}
	if completed != 12 {
		t.Fatalf("rt3_requests_total sums to %v, want 12", completed)
	}
	if snap["rt3_switches_total"] != 1 {
		t.Fatalf("rt3_switches_total = %v, want 1", snap["rt3_switches_total"])
	}
}

// TestGenServerTraceSpans runs generations through the continuous-
// batching server and asserts the retained request traces carry the
// queue/prefill/decode_step/finish span sequence, export as JSONL, and
// render to schema-valid Chrome trace_event JSON.
func TestGenServerTraceSpans(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	srv := serve.New(eng, serve.Config{Generate: true, MaxBatch: 4, MaxGenTokens: 5, QueueCap: 64})
	srv.Start()
	prompts := [][]int{
		randSeqs(1, 4, lmCfg.Vocab, 81)[0],
		randSeqs(1, 3, lmCfg.Vocab, 82)[0],
		randSeqs(1, 5, lmCfg.Vocab, 83)[0],
	}
	var chans []<-chan serve.GenResponse
	for _, p := range prompts {
		ch, err := srv.SubmitGen(p, 5, -1)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for _, ch := range chans {
		if resp := <-ch; resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	srv.Stop()

	tracer := srv.Tracer()
	if tracer == nil {
		t.Fatal("tracer disabled under default config")
	}
	if got := tracer.Len(); got != len(prompts) {
		t.Fatalf("retained traces = %d, want %d", got, len(prompts))
	}

	var jsonl bytes.Buffer
	if err := tracer.WriteJSONL(&jsonl, 0); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&jsonl)
	traces := 0
	for sc.Scan() {
		traces++
		var te struct {
			Kind  string `json:"kind"`
			Spans []struct {
				Name  string             `json:"name"`
				DurUS float64            `json:"dur_us"`
				Args  map[string]float64 `json:"args"`
			} `json:"spans"`
		}
		if err := json.Unmarshal(sc.Bytes(), &te); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		if te.Kind != "generate" {
			t.Fatalf("trace kind = %q, want generate", te.Kind)
		}
		seen := map[string]int{}
		for _, s := range te.Spans {
			seen[s.Name]++
		}
		for _, name := range []string{"queue", "prefill", "decode_step", "finish"} {
			if seen[name] == 0 {
				t.Fatalf("trace missing %s span: %+v", name, seen)
			}
		}
		// 5 tokens = 1 prefill token + 4 decode steps, all below
		// SampleFirst, so every step span is present.
		if seen["decode_step"] != 4 {
			t.Fatalf("decode_step spans = %d, want 4", seen["decode_step"])
		}
		var finish map[string]float64
		for _, s := range te.Spans {
			if s.Name == "finish" {
				finish = s.Args
			}
		}
		if finish["tokens"] != 5 || finish["steps"] != 4 {
			t.Fatalf("finish args = %v, want tokens=5 steps=4", finish)
		}
	}
	if traces != len(prompts) {
		t.Fatalf("JSONL traces = %d, want %d", traces, len(prompts))
	}

	var chrome bytes.Buffer
	if err := tracer.WriteTraceEvents(&chrome, 0); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
			TID  uint64  `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &file); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" || len(file.TraceEvents) == 0 {
		t.Fatalf("bad chrome file: unit=%q events=%d", file.DisplayTimeUnit, len(file.TraceEvents))
	}
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" || ev.Name == "" || ev.Cat == "" || ev.PID != 1 || ev.TID == 0 {
			t.Fatalf("malformed trace event: %+v", ev)
		}
	}
}

// TestSubmitTraceStallSpan verifies a classification request that
// overlaps a live switch reports the stall in its trace, and one
// admitted after the switch does not.
func TestSubmitTraceStallSpan(t *testing.T) {
	eng, _ := newTestDeployment(t, 1)
	// a long flush deadline parks request A in the batcher while the
	// switch lands, so A deterministically overlaps it
	srv := serve.New(eng, serve.Config{MaxBatch: 4, MaxDelay: 200 * time.Millisecond, QueueCap: 64})
	srv.Start()
	defer srv.Stop()
	ids := randSeqs(1, 10, 24, 91)[0]

	chA, err := srv.Submit(ids)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SwitchTo(2); err != nil {
		t.Fatal(err)
	}
	// B's trace starts after the switch: it must not inherit the stall
	chB, err := srv.Submit(ids)
	if err != nil {
		t.Fatal(err)
	}
	<-chA
	<-chB

	var jsonl bytes.Buffer
	if err := srv.Tracer().WriteJSONL(&jsonl, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("retained %d traces, want 2", len(lines))
	}
	stalls := make([]bool, len(lines))
	for i, line := range lines {
		var te struct {
			Spans []struct {
				Name string `json:"name"`
			} `json:"spans"`
		}
		if err := json.Unmarshal([]byte(line), &te); err != nil {
			t.Fatal(err)
		}
		for _, s := range te.Spans {
			if s.Name == "switch_stall" {
				stalls[i] = true
			}
		}
	}
	if !stalls[0] {
		t.Fatal("overlapping trace missing switch_stall span")
	}
	if stalls[1] {
		t.Fatal("post-switch trace reports a stall it never overlapped")
	}
}

// TestDecodeTracingAllocs pins the acceptance criterion that tracing at
// default sampling adds zero allocations to the steady-state decode
// loop: a warmed tracer leases, records and finishes a trace around
// KV-cached DecodeBatch steps without a single allocation.
func TestDecodeTracingAllocs(t *testing.T) {
	const (
		batch     = 4
		promptLen = 4
		steps     = 6
	)
	eng, _ := newLMDeployment(t, 1, "pattern")
	tracer := obs.NewTracer(obs.TracerConfig{RingCap: 4})
	prompts := make([][]int, batch)
	for i := range prompts {
		prompts[i] = randSeqs(1, promptLen, lmCfg.Vocab, int64(101+i))[0]
	}
	states := make([]*transformer.DecodeState, batch)
	for i := range states {
		st, err := eng.NewDecodeState(0)
		if err != nil {
			t.Fatal(err)
		}
		st.Reserve(promptLen + steps + 1)
		states[i] = st
	}
	outs, err := eng.PrefillBatch(0, states, prompts)
	if err != nil {
		t.Fatal(err)
	}
	first := make([]int, batch)
	for i := range prompts {
		first[i] = outs[i].ArgmaxRow(outs[i].Rows - 1)
	}
	tokens := make([]int, batch)
	pass := func() {
		tr := tracer.Start("bench")
		for i := range states {
			states[i].TruncateTo(promptLen)
			tokens[i] = first[i]
		}
		for s := 0; s < steps; s++ {
			t0 := time.Now()
			logits, err := eng.DecodeBatch(0, states, tokens)
			if err != nil {
				panic(err)
			}
			if tracer.SampleStep(s) {
				tr.Add("decode_step", t0, time.Since(t0), "step", float64(s), "batch", batch)
			}
			for i := range tokens {
				tokens[i] = logits.ArgmaxRow(i)
			}
		}
		tracer.Finish(tr)
	}
	// warm past RingCap so Finish recycles evicted traces into the free
	// list and StartAt stops allocating
	for i := 0; i < 8; i++ {
		pass()
	}
	if allocs := testing.AllocsPerRun(50, pass); allocs != 0 {
		t.Fatalf("traced decode pass allocates %.1f times, want 0", allocs)
	}
}
