package serve_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rt3/internal/kernel"
	"rt3/internal/mat"
	"rt3/internal/pattern"
	"rt3/internal/rtswitch"
	"rt3/internal/serve"
	"rt3/internal/transformer"
)

// lmCfg is the generation-test topology: the paper's encoder-decoder LM
// shape with two decoder layers so the multi-layer cached path runs
// through packed kernels too.
var lmCfg = transformer.Config{
	Vocab: 24, Dim: 16, Heads: 2, FFHidden: 32, EncLayers: 2, DecLayers: 2, SeqLen: 12,
}

// newLMDeployment deploys an LM bundle onto the requested number of
// cloned replicas with the given kernel format, returning the engine
// and the concrete models (for reference-path access).
func newLMDeployment(t testing.TB, replicas int, format string) (*serve.Engine, []*transformer.LMModel) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	model := transformer.NewLMModel(lmCfg, rng)
	ref := model.PrunableLinears()[0].W.Value
	var sets []*pattern.Set
	for _, sp := range sparsities {
		sets = append(sets, pattern.GenerateSet(ref, 4, sp, 3, rng))
	}
	bundle := serve.BundleFromModel(model, sets, levelNames)
	lms := make([]*transformer.LMModel, replicas)
	ms := make([]serve.Model, replicas)
	for i := range lms {
		lms[i] = model.Clone()
		ms[i] = lms[i]
	}
	eng, err := serve.NewEngineConfigured(bundle, ms, rtswitch.DefaultSwitchCostModel(),
		serve.EngineConfig{Format: format})
	if err != nil {
		t.Fatal(err)
	}
	return eng, lms
}

// decodeCached generates genLen tokens for the prompts through the
// engine's cached path on the given replica, returning the per-step
// packed logits (cloned) and the final token streams.
func decodeCached(t testing.TB, eng *serve.Engine, replica int, prompts [][]int, genLen int) ([]*mat.Matrix, [][]int) {
	t.Helper()
	states := make([]*transformer.DecodeState, len(prompts))
	for i := range states {
		st, err := eng.NewDecodeState(replica)
		if err != nil {
			t.Fatal(err)
		}
		states[i] = st
	}
	outs, err := eng.PrefillBatch(replica, states, prompts)
	if err != nil {
		t.Fatal(err)
	}
	tokens := make([]int, len(prompts))
	streams := make([][]int, len(prompts))
	for i := range prompts {
		tokens[i] = outs[i].ArgmaxRow(outs[i].Rows - 1)
		streams[i] = append(streams[i], tokens[i])
	}
	var steps []*mat.Matrix
	for s := 1; s < genLen; s++ {
		logits, err := eng.DecodeBatch(replica, states, tokens)
		if err != nil {
			t.Fatal(err)
		}
		steps = append(steps, logits.Clone())
		for i := range prompts {
			tokens[i] = logits.ArgmaxRow(i)
			streams[i] = append(streams[i], tokens[i])
		}
	}
	return steps, streams
}

// TestDecodeBatchBitIdenticalAllFormats is the serving-side tentpole
// invariant: for every registry kernel format and every deployed level,
// N tokens decoded through the engine's KV-cached path produce logits
// bit-identical to N full recomputations of the decoder stack over the
// growing prefix (DecodeFull on the same packed kernels).
func TestDecodeBatchBitIdenticalAllFormats(t *testing.T) {
	const genLen = 6
	for _, format := range kernel.Formats() {
		format := format
		t.Run(format, func(t *testing.T) {
			eng, lms := newLMDeployment(t, 1, format)
			m := lms[0]
			prompts := [][]int{
				randSeqs(1, 7, lmCfg.Vocab, 61)[0],
				randSeqs(1, 1, lmCfg.Vocab, 62)[0],
				randSeqs(1, 9, lmCfg.Vocab, 63)[0],
			}
			for lvl := 0; lvl < eng.NumLevels(); lvl++ {
				if _, err := eng.SwitchTo(lvl); err != nil {
					t.Fatal(err)
				}
				memory, memOff := m.EncodeBatch(prompts)
				stepLogits, streams := decodeCached(t, eng, 0, prompts, genLen)

				// replay the same token streams through full recomputation
				seqs := make([][]int, len(prompts))
				for i := range prompts {
					seqs[i] = append(append([]int(nil), prompts[i]...), streams[i][0])
				}
				for s, logits := range stepLogits {
					refs := m.DecodeFull(seqs, memory, memOff)
					for i := range prompts {
						got := logits.RowSpan(i, i+1)
						want := refs[i].RowSpan(refs[i].Rows-1, refs[i].Rows)
						if !mat.Equal(got, want, 0) {
							t.Fatalf("level %d step %d seq %d: cached logits differ from full recompute", lvl, s, i)
						}
					}
					for i := range prompts {
						seqs[i] = append(seqs[i], streams[i][s+1])
					}
				}
			}
		})
	}
}

// TestGenerateSchedulerRaggedEviction runs the continuous-batching
// scheduler end to end with ragged token budgets: sequences finish at
// different steps, slots are evicted and refilled mid-stream, and every
// response must match the single-sequence cached reference — plus the
// free-list must keep the decode-state count at the slot count.
func TestGenerateSchedulerRaggedEviction(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	refEng, _ := newLMDeployment(t, 1, "pattern")

	const maxBatch = 4
	srv := serve.New(eng, serve.Config{
		Generate: true, MaxBatch: maxBatch, QueueCap: 64,
	})
	srv.Start()
	defer srv.Stop()

	prompts := randSeqs(12, 6, lmCfg.Vocab, 67)
	budgets := []int{3, 1, 6, 2, 5, 1, 4, 2, 6, 3, 1, 5}
	chans := make([]<-chan serve.GenResponse, len(prompts))
	for i := range prompts {
		ch, err := srv.SubmitGen(prompts[i], budgets[i], -1)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
		if len(resp.Tokens) != budgets[i] {
			t.Fatalf("request %d: %d tokens, want %d (EOS disabled)", i, len(resp.Tokens), budgets[i])
		}
		if resp.Steps != budgets[i]-1 {
			t.Fatalf("request %d: %d steps for %d tokens", i, resp.Steps, len(resp.Tokens))
		}
		_, want := decodeCached(t, refEng, 0, [][]int{prompts[i]}, budgets[i])
		for j, tok := range resp.Tokens {
			if tok != want[0][j] {
				t.Fatalf("request %d token %d: got %d, want %d", i, j, tok, want[0][j])
			}
		}
	}
	if st := eng.DecodeStats(); st.States > maxBatch {
		t.Fatalf("scheduler built %d decode states for %d slots: free-list not recycling", st.States, maxBatch)
	} else if st.Tokens == 0 || st.CachedRows == 0 {
		t.Fatalf("decode counters not advancing: %+v", st)
	}
}

// TestGenerateConcurrentReplicas drives the engine's decode path on two
// replicas from two goroutines (the decode-worker concurrency pattern);
// run under -race in CI. Each replica's token streams must match its
// own sequential reference.
func TestGenerateConcurrentReplicas(t *testing.T) {
	eng, _ := newLMDeployment(t, 2, "pattern")
	const genLen = 8
	prompts := [][]int{
		randSeqs(1, 5, lmCfg.Vocab, 71)[0],
		randSeqs(1, 8, lmCfg.Vocab, 72)[0],
	}
	// sequential references, one per replica
	var refs [2][][]int
	for r := 0; r < 2; r++ {
		_, refs[r] = decodeCached(t, eng, r, [][]int{prompts[r]}, genLen)
	}
	const rounds = 20
	errc := make(chan error, 2)
	for r := 0; r < 2; r++ {
		r := r
		go func() {
			for i := 0; i < rounds; i++ {
				_, got := decodeCached(t, eng, r, [][]int{prompts[r]}, genLen)
				for j, tok := range got[0] {
					if tok != refs[r][0][j] {
						errc <- fmt.Errorf("replica %d round %d token %d: got %d want %d", r, i, j, tok, refs[r][0][j])
						return
					}
				}
			}
			errc <- nil
		}()
	}
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestGenerateLiveSwitch reconfigures the engine mid-generation: the
// switch drains at decode-step granularity, in-flight sequences keep
// their caches and finish on the new level's kernels, and nothing
// deadlocks or drops.
func TestGenerateLiveSwitch(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	srv := serve.New(eng, serve.Config{Generate: true, MaxBatch: 4, QueueCap: 64})
	srv.Start()
	defer srv.Stop()

	prompts := randSeqs(6, 5, lmCfg.Vocab, 73)
	chans := make([]<-chan serve.GenResponse, len(prompts))
	for i := range prompts {
		ch, err := srv.SubmitGen(prompts[i], 40, -1)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	if _, err := srv.SwitchTo(2); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("request %d: %v", i, resp.Err)
		}
		if len(resp.Tokens) != 40 {
			t.Fatalf("request %d: %d tokens, want 40", i, len(resp.Tokens))
		}
	}
	if eng.Level() != 2 {
		t.Fatalf("level %d after switch, want 2", eng.Level())
	}
}

// TestGenerateEOSEviction: a request with an EOS token stops as soon as
// the model emits it, budget permitting.
func TestGenerateEOSEviction(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	refEng, _ := newLMDeployment(t, 1, "pattern")
	srv := serve.New(eng, serve.Config{Generate: true, MaxBatch: 4, QueueCap: 16})
	srv.Start()
	defer srv.Stop()

	prompt := randSeqs(1, 6, lmCfg.Vocab, 79)[0]
	const budget = 10
	_, ref := decodeCached(t, refEng, 0, [][]int{prompt}, budget)
	// pick as EOS a generated token whose first occurrence is not the
	// first token, so the response must run past step one and stop there
	cut := -1
	for j := 1; j < len(ref[0]) && cut < 0; j++ {
		first := true
		for _, prev := range ref[0][:j] {
			if prev == ref[0][j] {
				first = false
				break
			}
		}
		if first {
			cut = j
		}
	}
	if cut < 0 {
		t.Skip("greedy stream repeats one token; no mid-stream EOS candidate")
	}
	eos := ref[0][cut]
	ch, err := srv.SubmitGen(prompt, budget, eos)
	if err != nil {
		t.Fatal(err)
	}
	resp := <-ch
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	want := ref[0][:cut+1]
	if len(resp.Tokens) != len(want) {
		t.Fatalf("got %d tokens %v, want %d (stop at EOS %d)", len(resp.Tokens), resp.Tokens, len(want), eos)
	}
	for j, tok := range resp.Tokens {
		if tok != want[j] {
			t.Fatalf("token %d: got %d, want %d", j, tok, want[j])
		}
	}
}

// TestGenerateModeErrors pins the admission surface of the two modes:
// a generation server serves mixed traffic (classification batches ride
// between decode steps), while SubmitGen on a classification server
// still refuses.
func TestGenerateModeErrors(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	gen := serve.New(eng, serve.Config{Generate: true, MaxBatch: 2, QueueCap: 4})
	gen.Start()
	prompt := []int{1, 2}
	ch, err := gen.Submit(prompt)
	if err != nil {
		t.Fatalf("Submit on generation server: %v, want mixed-mode admission", err)
	}
	resp := <-ch
	if resp.Err != nil {
		t.Fatalf("classification on generation server: %v", resp.Err)
	}
	ref, err := gen.DenseReference(resp.Level, prompt)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equal(resp.Out, ref, 1e-9) {
		t.Fatal("mixed-mode classification differs from dense execution")
	}
	if _, err := gen.SubmitGen(nil, 4, -1); err != serve.ErrEmptyRequest {
		t.Fatalf("empty prompt: %v, want ErrEmptyRequest", err)
	}
	gen.Stop()
	if _, err := gen.SubmitGen([]int{1}, 4, -1); err != serve.ErrStopped {
		t.Fatalf("after stop: %v, want ErrStopped", err)
	}
	if _, err := gen.Submit([]int{1}); err != serve.ErrStopped {
		t.Fatalf("Submit after stop: %v, want ErrStopped", err)
	}

	cls, _ := newTestDeployment(t, 1)
	srv := serve.New(cls, serve.Config{})
	if _, err := srv.SubmitGen([]int{1, 2}, 4, -1); err != serve.ErrNotGenerating {
		t.Fatalf("SubmitGen on classification server: %v, want ErrNotGenerating", err)
	}
	srv.Stop()
}

// TestMixedModeTraffic drives concurrent classification and generation
// traffic through one generation server and dense-verifies both kinds:
// the decode loop interleaves classification batches between decode
// steps without perturbing either output.
func TestMixedModeTraffic(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	srv := serve.New(eng, serve.Config{Generate: true, MaxBatch: 4, QueueCap: 32})
	srv.Start()
	defer srv.Stop()

	prompts := randSeqs(6, 4, lmCfg.Vocab, 907)
	genCh := make([]<-chan serve.GenResponse, len(prompts))
	clsCh := make([]<-chan serve.Response, len(prompts))
	for i := range prompts {
		gch, err := srv.SubmitGen(prompts[i], 5, -1)
		if err != nil {
			t.Fatal(err)
		}
		genCh[i] = gch
		cch, err := srv.Submit(prompts[i])
		if err != nil {
			t.Fatal(err)
		}
		clsCh[i] = cch
	}
	for i := range prompts {
		g := <-genCh[i]
		if g.Err != nil {
			t.Fatalf("generation %d: %v", i, g.Err)
		}
		ref, err := srv.DenseGenReference(g.Level, prompts[i], 5, -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Tokens) != len(ref) {
			t.Fatalf("generation %d: %d tokens, want %d", i, len(g.Tokens), len(ref))
		}
		for j := range ref {
			if g.Tokens[j] != ref[j] {
				t.Fatalf("generation %d token %d: got %d, want %d", i, j, g.Tokens[j], ref[j])
			}
		}
		c := <-clsCh[i]
		if c.Err != nil {
			t.Fatalf("classification %d: %v", i, c.Err)
		}
		cref, err := srv.DenseReference(c.Level, prompts[i])
		if err != nil {
			t.Fatal(err)
		}
		if !mat.Equal(c.Out, cref, 1e-9) {
			t.Fatalf("classification %d differs from dense execution", i)
		}
	}
}

// TestGenerateStopDrains: Stop delivers every admitted generation in
// full — the same drain guarantee batch requests have.
func TestGenerateStopDrains(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	srv := serve.New(eng, serve.Config{Generate: true, MaxBatch: 2, QueueCap: 16})
	srv.Start()
	prompts := randSeqs(6, 4, lmCfg.Vocab, 83)
	chans := make([]<-chan serve.GenResponse, len(prompts))
	for i := range prompts {
		ch, err := srv.SubmitGen(prompts[i], 3, -1)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	srv.Stop()
	for i, ch := range chans {
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("request %d abandoned: %v", i, resp.Err)
		}
		if len(resp.Tokens) != 3 {
			t.Fatalf("request %d: %d tokens, want 3", i, len(resp.Tokens))
		}
	}
}

// TestLoadGenGenerationMode drives the decode path open-loop through
// the load generator's generation workload.
func TestLoadGenGenerationMode(t *testing.T) {
	eng, _ := newLMDeployment(t, 2, "pattern")
	srv := serve.New(eng, serve.Config{Generate: true, MaxBatch: 4, QueueCap: 256})
	srv.Start()
	defer srv.Stop()

	report, err := serve.RunLoad(srv, serve.LoadSpec{
		Duration: 150 * time.Millisecond,
		StartRPS: 150, EndRPS: 300,
		Vocab:        lmCfg.Vocab,
		Gen:          true,
		GenPromptMin: 2, GenPromptMax: 8,
		GenOutMin: 2, GenOutMax: 10,
		Seed: 89,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Completed == 0 || report.GenTokens == 0 {
		t.Fatalf("no generation traffic completed: %+v", report)
	}
	if report.TokensPerSec <= 0 || report.MeanGenLen < 1 {
		t.Fatalf("generation throughput not reported: %+v", report)
	}
	st := eng.DecodeStats()
	if st.Prefills == 0 || st.Steps == 0 || st.CachedRows == 0 {
		t.Fatalf("decode counters not advancing: %+v", st)
	}
	// verify mode is classification-only
	if _, err := serve.RunLoad(srv, serve.LoadSpec{
		Duration: 10 * time.Millisecond, Gen: true, Verify: true,
	}); err == nil {
		t.Fatal("Gen+Verify accepted")
	}
}
