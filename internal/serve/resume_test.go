package serve_test

import (
	"errors"
	"testing"
	"time"

	"rt3/internal/serve"
)

// TestSubmitGenResumeEquivalence pins the truncate-replay contract: a
// generation resumed from any committed prefix of an uninterrupted run
// finishes with exactly the uninterrupted run's tokens — the KV cache
// rebuilt by teacher-forced replay is a pure function of the fed
// tokens.
func TestSubmitGenResumeEquivalence(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	srv := serve.New(eng, serve.Config{Generate: true})
	srv.Start()
	defer srv.Stop()
	prompt := []int{3, 1, 4, 1, 5}
	const budget = 16

	ch, err := srv.SubmitGen(prompt, budget, -1)
	if err != nil {
		t.Fatal(err)
	}
	full := (<-ch).Tokens
	if len(full) != budget {
		t.Fatalf("uninterrupted run produced %d tokens, want %d", len(full), budget)
	}

	for _, k := range []int{1, 2, 7, budget - 1} {
		ch, err := srv.SubmitGenResume(prompt, full[:k], budget, -1)
		if err != nil {
			t.Fatal(err)
		}
		resp := <-ch
		if resp.Err != nil {
			t.Fatalf("resume from %d tokens: %v", k, resp.Err)
		}
		if len(resp.Tokens) != budget {
			t.Fatalf("resume from %d: got %d tokens, want %d", k, len(resp.Tokens), budget)
		}
		for i := range full {
			if resp.Tokens[i] != full[i] {
				t.Fatalf("resume from %d diverged at token %d: %d vs %d", k, i, resp.Tokens[i], full[i])
			}
		}
	}
}

// TestSubmitGenResumeTerminalPrefix checks the short-circuit: a prefix
// that already ends the generation completes immediately.
func TestSubmitGenResumeTerminalPrefix(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	srv := serve.New(eng, serve.Config{Generate: true})
	srv.Start()
	defer srv.Stop()

	ch, err := srv.SubmitGenResume([]int{1, 2}, []int{9, 8, 7}, 3, -1)
	if err != nil {
		t.Fatal(err)
	}
	resp := <-ch
	if resp.Err != nil || len(resp.Tokens) != 3 {
		t.Fatalf("budget-terminal prefix: err %v tokens %v", resp.Err, resp.Tokens)
	}

	ch, err = srv.SubmitGenResume([]int{1, 2}, []int{9, 5}, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	resp = <-ch
	if resp.Err != nil || len(resp.Tokens) != 2 || resp.Tokens[1] != 5 {
		t.Fatalf("eos-terminal prefix: err %v tokens %v", resp.Err, resp.Tokens)
	}
}

// TestKillDeliversPartial crashes a server mid-generation and checks
// the abandoned response carries ErrCrashed plus a committed prefix of
// the uninterrupted reference — the exact payload a cluster router
// resumes elsewhere.
func TestKillDeliversPartial(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	srv := serve.New(eng, serve.Config{Generate: true, StepFloor: 2 * time.Millisecond})
	srv.Start()
	prompt := []int{2, 7, 1, 8}
	const budget = 64

	ch, err := srv.SubmitGen(prompt, budget, -1)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	srv.Kill()
	resp := <-ch
	if !errors.Is(resp.Err, serve.ErrCrashed) {
		t.Fatalf("killed mid-generation: err %v, want ErrCrashed", resp.Err)
	}
	if len(resp.Tokens) == 0 || len(resp.Tokens) >= budget {
		t.Fatalf("partial has %d tokens, want in (0, %d) for a crash 20ms into 2ms steps", len(resp.Tokens), budget)
	}
	if !srv.Stopped() {
		t.Fatal("killed server does not report Stopped")
	}

	// the committed prefix must be a prefix of the uninterrupted stream:
	// regenerate it on the quiesced engine's cached path
	_, streams := decodeCached(t, eng, 0, [][]int{prompt}, budget)
	for i, tok := range resp.Tokens {
		if tok != streams[0][i] {
			t.Fatalf("committed token %d is %d, reference %d — crash corrupted the stream", i, tok, streams[0][i])
		}
	}

	// a submit after Kill fails fast
	if _, err := srv.SubmitGen(prompt, 4, -1); !errors.Is(err, serve.ErrStopped) {
		t.Fatalf("submit after Kill: %v, want ErrStopped", err)
	}
}

// TestDenseGenerateMatchesPacked checks the generation ground truth: at
// every level, the packed serving path and the masked dense decode
// produce identical token streams.
func TestDenseGenerateMatchesPacked(t *testing.T) {
	eng, _ := newLMDeployment(t, 1, "pattern")
	srv := serve.New(eng, serve.Config{Generate: true})
	srv.Start()
	defer srv.Stop()
	prompt := []int{5, 3, 8, 2, 9, 1}
	const budget = 12

	for lvl := 0; lvl < eng.NumLevels(); lvl++ {
		if _, err := srv.SwitchTo(lvl); err != nil {
			t.Fatal(err)
		}
		ch, err := srv.SubmitGen(prompt, budget, -1)
		if err != nil {
			t.Fatal(err)
		}
		resp := <-ch
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if resp.Level != lvl {
			t.Fatalf("served at level %d, want %d", resp.Level, lvl)
		}
		ref, err := srv.DenseGenReference(lvl, prompt, budget, -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(ref) != len(resp.Tokens) {
			t.Fatalf("level %d: dense ref %d tokens, served %d", lvl, len(ref), len(resp.Tokens))
		}
		for i := range ref {
			if ref[i] != resp.Tokens[i] {
				t.Fatalf("level %d token %d: served %d, dense %d", lvl, i, resp.Tokens[i], ref[i])
			}
		}
	}
}

// TestLoadCancelStopsArrivals checks LoadSpec.Cancel ends the arrival
// phase early while still delivering a normal report.
func TestLoadCancelStopsArrivals(t *testing.T) {
	eng, _ := newTestDeployment(t, 1)
	srv := serve.New(eng, serve.Config{})
	srv.Start()
	defer srv.Stop()
	cancel := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(cancel)
	}()
	t0 := time.Now()
	rep, err := serve.RunLoad(srv, serve.LoadSpec{
		Duration: 10 * time.Second, StartRPS: 200, Cancel: cancel,
		SeqLen: 6, Vocab: lmCfg.Vocab, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if took := time.Since(t0); took > 3*time.Second {
		t.Fatalf("canceled run took %s, want well under the 10s duration", took)
	}
	if rep.Offered == 0 || rep.Completed == 0 {
		t.Fatalf("canceled run: offered %d completed %d, want > 0", rep.Offered, rep.Completed)
	}
}
