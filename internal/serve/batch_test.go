package serve_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rt3/internal/mat"
	"rt3/internal/rtswitch"
	"rt3/internal/serve"
)

// raggedBatches builds request batches with uneven sequence lengths.
func raggedBatches(n, vocab int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int, n)
	for i := range out {
		seq := make([]int, 1+rng.Intn(10))
		for j := range seq {
			seq[j] = rng.Intn(vocab)
		}
		out[i] = seq
	}
	return out
}

// TestEngineForwardBatchAllFormats is the registry-wide equivalence
// test: at every level and in every execution format, a fused
// ForwardBatch over a ragged batch must be bit-identical to the
// per-sequence Forward loop, and match masked dense execution.
func TestEngineForwardBatchAllFormats(t *testing.T) {
	for _, format := range []string{"dense", "coo", "csr", "blockcsr", "pattern"} {
		format := format
		t.Run(format, func(t *testing.T) {
			_, bundle := newTestDeployment(t, 1)
			eng, err := serve.NewEngineConfigured(bundle, []serve.Model{newTestModel()},
				rtswitch.DefaultSwitchCostModel(), serve.EngineConfig{Format: format})
			if err != nil {
				t.Fatal(err)
			}
			seqs := raggedBatches(6, 24, 61)
			for lvl := 0; lvl < eng.NumLevels(); lvl++ {
				if _, err := eng.SwitchTo(lvl); err != nil {
					t.Fatal(err)
				}
				outs := eng.ForwardBatch(0, seqs)
				if len(outs) != len(seqs) {
					t.Fatalf("%d outputs for %d sequences", len(outs), len(seqs))
				}
				for i, ids := range seqs {
					want := eng.Forward(0, ids)
					if !mat.Equal(outs[i], want, 0) {
						t.Fatalf("level %d seq %d (len %d): fused output differs from per-sequence loop",
							lvl, i, len(ids))
					}
					ref, err := eng.DenseForward(lvl, ids)
					if err != nil {
						t.Fatal(err)
					}
					if !mat.Equal(outs[i], ref, 1e-9) {
						t.Fatalf("level %d seq %d: fused output differs from masked dense execution", lvl, i)
					}
				}
			}
		})
	}
}

// TestEngineForwardBatchConcurrentReplicas drives concurrent fused
// batches through separate replicas — the server's worker-pool pattern —
// and checks outputs stay correct. Run under -race in CI.
func TestEngineForwardBatchConcurrentReplicas(t *testing.T) {
	const replicas = 3
	eng, _ := newTestDeployment(t, replicas)
	batches := make([][][]int, replicas)
	refs := make([][]*mat.Matrix, replicas)
	for r := range batches {
		batches[r] = raggedBatches(5, 24, int64(67+r))
		refs[r] = make([]*mat.Matrix, len(batches[r]))
		for i, ids := range batches[r] {
			var err error
			refs[r][i], err = eng.DenseForward(0, ids)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	const rounds = 40
	errc := make(chan error, replicas)
	for r := 0; r < replicas; r++ {
		r := r
		go func() {
			for i := 0; i < rounds; i++ {
				outs := eng.ForwardBatch(r, batches[r])
				for j, out := range outs {
					if !mat.Equal(out, refs[r][j], 1e-9) {
						errc <- fmt.Errorf("replica %d round %d seq %d: output corrupted", r, i, j)
						return
					}
				}
			}
			errc <- nil
		}()
	}
	for r := 0; r < replicas; r++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	batchesN, seqs, rows := eng.BatchStats()
	if batchesN != replicas*rounds {
		t.Fatalf("BatchStats batches %d, want %d", batchesN, replicas*rounds)
	}
	if seqs != int64(replicas*rounds*5) {
		t.Fatalf("BatchStats seqs %d, want %d", seqs, replicas*rounds*5)
	}
	if rows <= seqs {
		t.Fatalf("BatchStats rows %d not above seqs %d", rows, seqs)
	}
}

// TestEngineForwardBatchOutputsIndependent pins the boundary-copy
// contract for fused outputs: each returned matrix survives later
// forward passes on the same replica.
func TestEngineForwardBatchOutputsIndependent(t *testing.T) {
	eng, _ := newTestDeployment(t, 1)
	seqs := raggedBatches(4, 24, 71)
	outs := eng.ForwardBatch(0, seqs)
	copies := make([]*mat.Matrix, len(outs))
	for i, o := range outs {
		copies[i] = o.Clone()
	}
	eng.ForwardBatch(0, raggedBatches(4, 24, 72))
	for i := range outs {
		if !mat.Equal(outs[i], copies[i], 0) {
			t.Fatalf("fused output %d mutated by a later forward pass", i)
		}
	}
}

// TestSubmitRejectsEmptySequence: a zero-length sequence must fail fast
// at admission (the packed batch forward has no representation for it)
// instead of reaching a worker and taking down its whole batch.
func TestSubmitRejectsEmptySequence(t *testing.T) {
	eng, _ := newTestDeployment(t, 1)
	s := serve.New(eng, serve.Config{})
	s.Start()
	defer s.Stop()
	if _, err := s.Submit(nil); err != serve.ErrEmptyRequest {
		t.Fatalf("Submit(nil) err %v, want ErrEmptyRequest", err)
	}
	if _, err := s.Submit([]int{}); err != serve.ErrEmptyRequest {
		t.Fatalf("Submit([]) err %v, want ErrEmptyRequest", err)
	}
	// the server must still serve normal traffic afterwards
	ch, err := s.Submit([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp := <-ch; resp.Err != nil || resp.Out == nil {
		t.Fatalf("healthy request failed after rejected empties: %+v", resp)
	}
}

// TestServerBatchedResponses checks the worker's batched dispatch end to
// end: responses split back per request, queue/exec latency components
// recorded separately, and the batch fill ratio observable.
func TestServerBatchedResponses(t *testing.T) {
	eng, _ := newTestDeployment(t, 1)
	s := serve.New(eng, serve.Config{MaxBatch: 4, MaxDelay: 200 * time.Millisecond})
	s.Start()
	defer s.Stop()

	seqs := raggedBatches(4, 24, 73)
	refs := make([]*mat.Matrix, len(seqs))
	for i, ids := range seqs {
		var err error
		refs[i], err = s.DenseReference(0, ids)
		if err != nil {
			t.Fatal(err)
		}
	}
	var chans []<-chan serve.Response
	for _, ids := range seqs {
		ch, err := s.Submit(ids)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	for i, ch := range chans {
		resp := <-ch
		if resp.BatchSize != 4 {
			t.Fatalf("response %d rode batch of %d, want 4", i, resp.BatchSize)
		}
		if !mat.Equal(resp.Out, refs[i], 1e-9) {
			t.Fatalf("response %d differs from dense execution", i)
		}
		if resp.ExecMS <= 0 {
			t.Fatalf("response %d: ExecMS %g not positive", i, resp.ExecMS)
		}
		if got := resp.QueueMS + resp.ExecMS; got != resp.TotalMS {
			t.Fatalf("response %d: TotalMS %g != QueueMS %g + ExecMS %g", i, resp.TotalMS, resp.QueueMS, resp.ExecMS)
		}
	}
	if got := s.Recorder().FillRatio(); got != 1 {
		t.Fatalf("fill ratio %g after one full batch, want 1", got)
	}
	batches, nseqs, _ := eng.BatchStats()
	if batches != 1 || nseqs != 4 {
		t.Fatalf("BatchStats (%d batches, %d seqs), want (1, 4)", batches, nseqs)
	}
	stats := s.Recorder().Snapshot()
	if len(stats) != 1 {
		t.Fatalf("%d level stats, want 1", len(stats))
	}
	if stats[0].MeanExecMS <= 0 {
		t.Fatal("mean exec time not recorded")
	}
	if diff := stats[0].MeanMS - stats[0].MeanQueueMS - stats[0].MeanExecMS; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("mean total %g != queue %g + exec %g", stats[0].MeanMS, stats[0].MeanQueueMS, stats[0].MeanExecMS)
	}

	// a lone deadline-flushed request halves the fill ratio (1 of 4 + 4 of 4)
	ch, err := s.Submit(seqs[0])
	if err != nil {
		t.Fatal(err)
	}
	<-ch
	if got := s.Recorder().FillRatio(); got != 5.0/8.0 {
		t.Fatalf("fill ratio %g after 5 requests over 8 capacity, want 0.625", got)
	}
}
