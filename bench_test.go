// Package bench is the top-level benchmark harness: one benchmark per
// table and figure of the paper's evaluation section (regenerating the
// artifact and reporting its headline numbers as custom metrics), plus
// ablation benches for the design choices called out in DESIGN.md and
// micro-benchmarks of the hot kernels.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// or print the full formatted tables with cmd/rt3bench.
package bench

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rt3/internal/deploy"
	"rt3/internal/dvfs"
	"rt3/internal/experiments"
	"rt3/internal/hwsim"
	"rt3/internal/mat"
	"rt3/internal/pattern"
	"rt3/internal/prune"
	"rt3/internal/rt3"
	"rt3/internal/rtswitch"
	"rt3/internal/serve"
	"rt3/internal/sparse"
	"rt3/internal/transformer"
)

// BenchmarkTableI regenerates the V/F level table (Table I).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := experiments.TableI(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableII regenerates the E1/E2/E3 reconfiguration comparison
// (Table II) and reports the E3-over-E1 improvement in runs.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableII(experiments.ScaleTiny)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[2].Improvement, "E3/E1_runs")
		b.ReportMetric(res.Rows[1].Improvement, "E2/E1_runs")
	}
}

// BenchmarkTableIII regenerates the AutoML results (Table III) for each
// dataset/constraint, reporting the mean RT3-vs-UB metric gap and the
// switch-time speedup.
func BenchmarkTableIII(b *testing.B) {
	for _, spec := range experiments.DefaultTable3Specs() {
		spec := spec
		name := spec.Dataset + "_T" + itoa(int(spec.TimingMS))
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.TableIII(experiments.ScaleTiny, spec)
				if err != nil {
					b.Fatal(err)
				}
				var gap float64
				for _, sm := range res.SubModels {
					gap += sm.MetricGap
				}
				b.ReportMetric(gap/float64(len(res.SubModels)), "mean_UB_gap")
				b.ReportMetric(res.UBInterruptMS/res.RTInterruptMS, "switch_speedup")
			}
		})
	}
}

// BenchmarkTableIV regenerates the six-method ablation (Table IV) per
// dataset, reporting RT3's runs improvement and metric loss.
func BenchmarkTableIV(b *testing.B) {
	for _, ds := range []string{"WikiText-2", "RTE", "STS-B"} {
		ds := ds
		b.Run(ds, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.TableIV(experiments.ScaleTiny, ds)
				if err != nil {
					b.Fatal(err)
				}
				for _, row := range res.Rows {
					if row.Method == rt3.MethodRT3 {
						b.ReportMetric(row.Improvement, "RT3_runs_impr")
						b.ReportMetric(row.MetricLoss, "RT3_metric_loss")
					}
				}
			}
		})
	}
}

// BenchmarkFigure3a regenerates the Pareto-frontier exploration.
func BenchmarkFigure3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3a(experiments.ScaleTiny)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.LooseFront)), "loose_front_pts")
		b.ReportMetric(float64(len(res.TightFront)), "tight_front_pts")
	}
}

// BenchmarkFigure3bc regenerates the best-solution accuracy/sparsity
// panels for the loose constraint.
func BenchmarkFigure3bc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3bc(experiments.ScaleTiny, 104)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OriginalAcc, "original_acc")
		b.ReportMetric(res.BackboneAcc, "backbone_acc")
	}
}

// BenchmarkFigure4 regenerates the pattern visualizations.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(experiments.ScaleTiny)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Sparsities[len(res.Sparsities)-1], "sparsest_pattern")
	}
}

// BenchmarkFigure5 regenerates the BP evaluation across GLUE +
// WikiText-2, reporting mean score loss.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(experiments.ScaleTiny)
		if err != nil {
			b.Fatal(err)
		}
		var loss float64
		for _, row := range res.Rows {
			loss += row.ScoreLoss
		}
		b.ReportMetric(loss/float64(len(res.Rows)), "mean_score_loss")
	}
}

// BenchmarkAblationPatternSize sweeps the pattern size (the paper fixes
// psize=100 for the full model; here the trade-off between mask
// granularity and achievable sparsity control is probed at 2/4/8).
func BenchmarkAblationPatternSize(b *testing.B) {
	task := experiments.NewLMTask(experiments.ScaleTiny, 7)
	rng := rand.New(rand.NewSource(8))
	l1, err := rt3.RunLevel1(task, experiments.DefaultLevel1(0.3), rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, psize := range []int{2, 4, 8} {
		psize := psize
		b.Run("psize"+itoa(psize), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := experiments.DefaultSearch(experiments.ScaleTiny, 104, 9)
				cfg.CalibrateMS = 160
				cfg.Space.PSize = psize
				res, err := rt3.Search(task, l1, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Best.TotalRuns, "total_runs")
			}
		})
	}
}

// BenchmarkAblationTheta sweeps the search-space width theta (candidates
// per V/F level).
func BenchmarkAblationTheta(b *testing.B) {
	task := experiments.NewLMTask(experiments.ScaleTiny, 10)
	rng := rand.New(rand.NewSource(11))
	l1, err := rt3.RunLevel1(task, experiments.DefaultLevel1(0.3), rng)
	if err != nil {
		b.Fatal(err)
	}
	for _, theta := range []int{1, 3, 5} {
		theta := theta
		b.Run("theta"+itoa(theta), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := experiments.DefaultSearch(experiments.ScaleTiny, 104, 12)
				cfg.CalibrateMS = 160
				cfg.Space.Theta = theta
				res, err := rt3.Search(task, l1, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Best.Reward, "best_reward")
			}
		})
	}
}

// BenchmarkAblationJointTraining compares joint (shared backbone, Fig 2)
// against individual per-level training on identical masks, reporting
// the metric gap that Table III quantifies.
func BenchmarkAblationJointTraining(b *testing.B) {
	task := experiments.NewLMTask(experiments.ScaleTiny, 13)
	rng := rand.New(rand.NewSource(14))
	l1, err := rt3.RunLevel1(task, experiments.DefaultLevel1(0.3), rng)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.DefaultSearch(experiments.ScaleTiny, 104, 15)
	cfg.CalibrateMS = 160
	res, err := rt3.Search(task, l1, cfg)
	if err != nil {
		b.Fatal(err)
	}
	jt := rt3.JointTrainConfig{Epochs: 2, Batch: 8, LR: 2e-3}
	for i := 0; i < b.N; i++ {
		joint := rt3.JointTrain(task, res.Best.Masks, jt, rng)
		indiv := rt3.IndividualTrain(task, res.Best.Masks, jt, rng)
		var gap float64
		for j := range joint {
			gap += indiv[j] - joint[j]
		}
		b.ReportMetric(gap/float64(len(joint)), "UB_minus_joint")
	}
}

// BenchmarkAblationFormats measures the modelled latency of one
// Transformer projection at 50% sparsity across storage formats,
// the crossover argument behind BP's hardware-friendliness.
func BenchmarkAblationFormats(b *testing.B) {
	cm := hwsim.DefaultCostModel()
	shape := hwsim.LayerShape{Rows: 64, Cols: 64, Reuse: 16}
	mask := mat.New(64, 64)
	mask.Fill(1)
	rng := rand.New(rand.NewSource(16))
	for _, i := range rng.Perm(64 * 64)[:64*64/2] {
		mask.Data[i] = 0
	}
	level := dvfs.OdroidXU3Levels[2]
	cases := []struct {
		name   string
		format prune.Format
		cost   prune.StorageCost
	}{
		{"dense", prune.FormatDense, prune.CostDense(mask)},
		{"COO", prune.FormatCOO, prune.CostCOO(mask)},
		{"block", prune.FormatBlockStructured, prune.CostBlockStructured(mask, prune.BPConfig{Blocks: 4})},
		{"pattern", prune.FormatPattern, prune.CostPattern(mask, 8, 4)},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var cycles float64
			for i := 0; i < b.N; i++ {
				sp := 0.5
				if c.format == prune.FormatDense {
					sp = 0
				}
				cycles = cm.LayerCycles(shape, sp, c.format, c.cost)
			}
			b.ReportMetric(hwsim.LatencyMS(cycles, level)*1000, "layer_us")
		})
	}
}

// BenchmarkMatMul measures the core dense kernel.
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	a := mat.New(64, 64)
	a.Randomize(rng, 1)
	c := mat.New(64, 64)
	c.Randomize(rng, 1)
	dst := mat.New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MatMul(dst, a, c)
	}
}

// BenchmarkLMForward measures one language-model inference.
func BenchmarkLMForward(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	m := transformer.NewLMModel(transformer.Config{
		Vocab: 48, Dim: 24, Heads: 2, FFHidden: 48, EncLayers: 2, DecLayers: 1, SeqLen: 16,
	}, rng)
	ids := make([]int, 16)
	for i := range ids {
		ids[i] = rng.Intn(48)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(ids)
	}
}

// BenchmarkLMTrainStep measures one forward+backward pass.
func BenchmarkLMTrainStep(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	m := transformer.NewLMModel(transformer.Config{
		Vocab: 48, Dim: 24, Heads: 2, FFHidden: 48, EncLayers: 2, DecLayers: 1, SeqLen: 16,
	}, rng)
	ids := make([]int, 16)
	targets := make([]int, 16)
	for i := range ids {
		ids[i] = rng.Intn(48)
		targets[i] = rng.Intn(48)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, grad := m.Loss(ids, targets)
		m.Backward(grad)
	}
}

// BenchmarkPatternApply measures applying a pattern set to a weight
// matrix (the run-time mask rebuild path).
func BenchmarkPatternApply(b *testing.B) {
	rng := rand.New(rand.NewSource(20))
	w := mat.New(96, 96)
	w.Randomize(rng, 1)
	set := pattern.RandomSet(8, 0.5, 4, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Apply(w)
	}
}

// BenchmarkBlockPrune measures Algorithm 1 on a mid-size matrix.
func BenchmarkBlockPrune(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	w := mat.New(128, 128)
	w.Randomize(rng, 1)
	cfg := prune.BPConfig{Blocks: 8, Direction: prune.ColumnsInRowBlocks, Percentile: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prune.BlockPrune(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRLEpisode measures one controller sample + REINFORCE update.
func BenchmarkRLEpisode(b *testing.B) {
	benchRL(b)
}

func benchRL(b *testing.B) {
	b.Helper()
	rng := rand.New(rand.NewSource(22))
	ctrl, err := newBenchController(rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep := ctrl.Sample(rng)
		ctrl.Reinforce(ep, 0.5)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkSparseKernels measures the actual packed-format kernels from
// internal/sparse at 50% block-structured sparsity, grounding the hwsim
// cost-model ordering (pattern/block beat COO) in executable code.
func BenchmarkSparseKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	w := mat.New(96, 96)
	w.Randomize(rng, 1)
	mask, err := prune.BlockPrune(w, prune.BPConfig{Blocks: 4, Direction: prune.ColumnsInRowBlocks, Percentile: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	w.Hadamard(mask)
	x := mat.New(16, 96)
	x.Randomize(rng, 1)

	set := pattern.RandomSet(8, 0.5, 4, rng)
	pmask, choices := set.Apply(w)
	pw := w.Clone()
	pw.Hadamard(pmask)
	bits := make([][]uint8, len(set.Patterns))
	for i, p := range set.Patterns {
		bits[i] = p.Bits
	}
	packed, err := sparse.NewPattern(pw, 8, bits, choices)
	if err != nil {
		b.Fatal(err)
	}

	// destination-passing MulInto keeps the loop allocation-free, so the
	// numbers compare kernel arithmetic, not allocator behaviour
	dst := mat.New(16, 96)
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mat.MatMul(dst, x, w)
		}
	})
	b.Run("COO", func(b *testing.B) {
		m := sparse.NewCOO(w)
		for i := 0; i < b.N; i++ {
			m.MulInto(dst, x)
		}
	})
	b.Run("CSR", func(b *testing.B) {
		m := sparse.NewCSR(w)
		for i := 0; i < b.N; i++ {
			m.MulInto(dst, x)
		}
	})
	b.Run("blockCSR", func(b *testing.B) {
		m := sparse.NewBlockCSR(w, 4)
		for i := 0; i < b.N; i++ {
			m.MulInto(dst, x)
		}
	})
	b.Run("pattern", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			packed.MulInto(dst, x)
		}
	})
}

// BenchmarkServeThroughput measures batched request throughput through
// the full serving path (queue -> dynamic batcher -> worker pool ->
// packed kernels) at each deployed V/F level — the perf baseline for
// future serving-path PRs. ns/op is per completed request.
func BenchmarkServeThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	model := transformer.NewClassifier(transformer.Config{
		Vocab: 24, Dim: 16, Heads: 2, FFHidden: 32, EncLayers: 2, SeqLen: 10, Classes: 3,
	}, rng)
	ref := model.PrunableLinears()[0].W.Value
	var sets []*pattern.Set
	for _, sp := range []float64{0.3, 0.5, 0.7} {
		sets = append(sets, pattern.GenerateSet(ref, 4, sp, 3, rng))
	}
	bundle := serve.BundleFromModel(model, sets, []string{"l6", "l4", "l3"})
	eng, err := serve.NewEngine(bundle,
		[]serve.Model{model.Clone(), model.Clone()}, rtswitch.DefaultSwitchCostModel())
	if err != nil {
		b.Fatal(err)
	}
	seq := make([]int, 10)
	for i := range seq {
		seq[i] = rng.Intn(24)
	}
	for lvl := 0; lvl < eng.NumLevels(); lvl++ {
		lvl := lvl
		b.Run(eng.LevelName(lvl), func(b *testing.B) {
			// a fresh server per sub-benchmark keeps the latency recorder
			// from accumulating across runs and skewing later levels
			s := serve.New(eng, serve.Config{MaxBatch: 8, MaxDelay: time.Millisecond, QueueCap: 1024})
			s.Start()
			defer s.Stop()
			if _, err := s.SwitchTo(lvl); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			const wave = 256
			chans := make([]<-chan serve.Response, 0, wave)
			for done := 0; done < b.N; {
				n := wave
				if b.N-done < n {
					n = b.N - done
				}
				chans = chans[:0]
				for i := 0; i < n; i++ {
					ch, err := s.Submit(seq)
					if err != nil {
						b.Fatal(err)
					}
					chans = append(chans, ch)
				}
				for _, ch := range chans {
					<-ch
				}
				done += n
			}
		})
	}
}

// BenchmarkBatchedForward measures the tentpole of batched serving:
// Engine.ForwardBatch fusing a dynamic batch into one packed forward
// (one kernel product over ΣL rows per layer) versus the per-sequence
// Engine.Forward loop the worker used to run, on the pattern format at
// batch sizes 1/4/8/16. ns/op is per batch; the us/seq metric divides
// by the batch size. Outputs are verified bit-identical before timing.
func BenchmarkBatchedForward(b *testing.B) {
	const (
		vocab  = 32
		seqLen = 6
	)
	rng := rand.New(rand.NewSource(26))
	model := transformer.NewClassifier(transformer.Config{
		Vocab: vocab, Dim: 128, Heads: 4, FFHidden: 256, EncLayers: 2, SeqLen: seqLen, Classes: 3,
	}, rng)
	ref := model.PrunableLinears()[0].W.Value
	sets := []*pattern.Set{pattern.GenerateSet(ref, 8, 0.5, 4, rng)}
	bundle := serve.BundleFromModel(model, sets, []string{"l6"})
	eng, err := serve.NewEngineConfigured(bundle, []serve.Model{model.Clone()},
		rtswitch.DefaultSwitchCostModel(), serve.EngineConfig{Format: "pattern"})
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{1, 4, 8, 16} {
		batch := batch
		seqs := make([][]int, batch)
		for i := range seqs {
			seqs[i] = make([]int, seqLen)
			for j := range seqs[i] {
				seqs[i][j] = rng.Intn(vocab)
			}
		}
		// fused and per-sequence execution must agree bit for bit
		outs := eng.ForwardBatch(0, seqs)
		for i, ids := range seqs {
			if !mat.Equal(outs[i], eng.Forward(0, ids), 0) {
				b.Fatalf("batch %d seq %d: fused output differs from per-sequence loop", batch, i)
			}
		}
		b.Run(fmt.Sprintf("n%d/fused", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng.ForwardBatch(0, seqs)
			}
			b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N*batch), "us/seq")
		})
		b.Run(fmt.Sprintf("n%d/perseq", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, ids := range seqs {
					eng.Forward(0, ids)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N*batch), "us/seq")
		})
	}
}

// BenchmarkDecodeThroughput measures the incremental-decoding tentpole:
// generating tokens through the KV-cached DecodeBatch path (one fused
// single-row step per token) versus full recomputation (the decoder
// stack re-run over the whole growing prefix per token against the
// frozen prompt memory), at prompt 64 / gen 64 / batch 8 on the pattern
// format. Both arms replay identical greedy token streams (verified
// before timing), ns/op is one full 63-step generation pass, and the
// tok/s metric is generated-token throughput. The cached arm reports
// allocations: with reserved caches a steady-state decode step
// allocates nothing, so allocs/op stays 0 across the whole pass.
func BenchmarkDecodeThroughput(b *testing.B) {
	const (
		promptLen = 64
		genLen    = 64
		batch     = 8
	)
	cfg := transformer.Config{
		Vocab: 96, Dim: 64, Heads: 4, FFHidden: 128,
		EncLayers: 2, DecLayers: 1, SeqLen: promptLen + genLen,
	}
	rng := rand.New(rand.NewSource(27))
	model := transformer.NewLMModel(cfg, rng)
	ref := model.PrunableLinears()[0].W.Value
	sets := []*pattern.Set{pattern.GenerateSet(ref, 8, 0.5, 4, rng)}
	bundle := serve.BundleFromModel(model, sets, []string{"l6"})
	replica := model.Clone()
	eng, err := serve.NewEngineConfigured(bundle, []serve.Model{replica},
		rtswitch.DefaultSwitchCostModel(), serve.EngineConfig{Format: "pattern"})
	if err != nil {
		b.Fatal(err)
	}

	prompts := make([][]int, batch)
	for i := range prompts {
		prompts[i] = make([]int, promptLen)
		for j := range prompts[i] {
			prompts[i][j] = rng.Intn(cfg.Vocab)
		}
	}
	states := make([]*transformer.DecodeState, batch)
	for i := range states {
		st, err := eng.NewDecodeState(0)
		if err != nil {
			b.Fatal(err)
		}
		st.Reserve(promptLen + genLen)
		states[i] = st
	}
	outs, err := eng.PrefillBatch(0, states, prompts)
	if err != nil {
		b.Fatal(err)
	}
	tokens := make([]int, batch)
	streams := make([][]int, batch)
	for i := range prompts {
		tokens[i] = outs[i].ArgmaxRow(outs[i].Rows - 1)
		streams[i] = append(streams[i], tokens[i])
	}
	for s := 1; s < genLen; s++ {
		logits, err := eng.DecodeBatch(0, states, tokens)
		if err != nil {
			b.Fatal(err)
		}
		for i := range prompts {
			tokens[i] = logits.ArgmaxRow(i)
			streams[i] = append(streams[i], tokens[i])
		}
	}
	memory, memOff := replica.EncodeBatch(prompts)
	prefixes := make([][][]int, genLen)
	for s := 0; s < genLen; s++ {
		prefixes[s] = make([][]int, batch)
		for i := range prompts {
			prefixes[s][i] = append(append([]int(nil), prompts[i]...), streams[i][:s+1]...)
		}
	}
	// full recompute must reproduce the cached streams bit for bit
	for s := 0; s+1 < genLen; s++ {
		refs := replica.DecodeFull(prefixes[s], memory, memOff)
		for i := range prompts {
			if got := refs[i].ArgmaxRow(refs[i].Rows - 1); got != streams[i][s+1] {
				b.Fatalf("step %d seq %d: recompute diverged from cached stream", s, i)
			}
		}
	}
	tokPerOp := float64(batch * (genLen - 1))

	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			for i := range states {
				states[i].TruncateTo(promptLen)
				tokens[i] = streams[i][0]
			}
			for s := 1; s < genLen; s++ {
				logits, _ := eng.DecodeBatch(0, states, tokens)
				for i := range prompts {
					tokens[i] = logits.ArgmaxRow(i)
				}
			}
		}
		b.ReportMetric(tokPerOp*float64(b.N)/b.Elapsed().Seconds(), "tok/s")
	})
	b.Run("recompute", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			for s := 0; s+1 < genLen; s++ {
				replica.DecodeFull(prefixes[s], memory, memOff)
			}
		}
		b.ReportMetric(tokPerOp*float64(b.N)/b.Elapsed().Seconds(), "tok/s")
	})
}

// BenchmarkDeployBundle measures serializing and re-loading a deployment
// bundle, and reports how small the switchable section is relative to
// the whole artifact.
func BenchmarkDeployBundle(b *testing.B) {
	rng := rand.New(rand.NewSource(24))
	w := deploy.WeightMatrix{Name: "w", Rows: 64, Cols: 64, Data: make([]float64, 64*64)}
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	bundle := &deploy.Bundle{
		Weights:    []deploy.WeightMatrix{w},
		Sets:       []*pattern.Set{pattern.RandomSet(8, 0.5, 4, rng), pattern.RandomSet(8, 0.75, 4, rng)},
		LevelNames: []string{"l6", "l3"},
	}
	var data []byte
	var err error
	for i := 0; i < b.N; i++ {
		data, err = bundle.Encode()
		if err != nil {
			b.Fatal(err)
		}
		if _, err = deploy.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
	setBytes, err := bundle.SetBytes(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(data))/float64(setBytes), "bundle/set_ratio")
}
