module rt3

go 1.22
