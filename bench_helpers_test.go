package bench

import (
	"math/rand"

	"rt3/internal/rl"
)

// newBenchController builds the RL controller used by the episode
// micro-benchmark at the evaluation's decision-sequence shape.
func newBenchController(rng *rand.Rand) (*rl.Controller, error) {
	return rl.NewController(rl.Config{
		Hidden: 24, NumSets: 3, NumPatterns: 4, Levels: 3, K: 2, LR: 0.05,
	}, rng)
}
